#include "ops/join.h"

#include <algorithm>

#include "ops/serde_util.h"

namespace albic::ops {

RouteRainJoinOperator::RouteRainJoinOperator(int num_groups)
    : route_decade_(static_cast<size_t>(num_groups)),
      decade_delay_(static_cast<size_t>(num_groups)) {}

void RouteRainJoinOperator::Process(const engine::Tuple& tuple,
                                    int group_index, engine::Emitter* out) {
  if (tuple.aux == kRainMark) {
    // Rainscore side: remember the latest decade for the route.
    const int decade =
        std::clamp(static_cast<int>(tuple.num / 10.0) * 10, 0, 100);
    route_decade_[group_index][tuple.key] = decade;
    return;
  }
  // Delay side: join with the latest known decade (0 when none yet).
  int decade = 0;
  const int* known = route_decade_[group_index].find(tuple.key);
  if (known != nullptr) decade = *known;
  double& sum = decade_delay_[group_index][static_cast<uint64_t>(decade)];
  sum += tuple.num;
  engine::Tuple t;
  t.key = static_cast<uint64_t>(decade);
  t.num = sum;
  t.aux = tuple.key;
  out->Emit(t);
}

void RouteRainJoinOperator::ProcessBatch(const engine::TupleBatch& batch,
                                         int group_index,
                                         engine::Emitter* out) {
  // Hoist both group-state lookups out of the loop.
  auto& decades = route_decade_[group_index];
  auto& delays = decade_delay_[group_index];
  for (const engine::Tuple& tuple : batch) {
    if (tuple.aux == kRainMark) {
      const int decade =
          std::clamp(static_cast<int>(tuple.num / 10.0) * 10, 0, 100);
      decades[tuple.key] = decade;
      continue;
    }
    int decade = 0;
    const int* known = decades.find(tuple.key);
    if (known != nullptr) decade = *known;
    double& sum = delays[static_cast<uint64_t>(decade)];
    sum += tuple.num;
    engine::Tuple t;
    t.key = static_cast<uint64_t>(decade);
    t.num = sum;
    t.aux = tuple.key;
    out->Emit(t);
  }
}

double RouteRainJoinOperator::DelayForDecade(int group_index,
                                             int decade) const {
  const double* sum =
      decade_delay_[group_index].find(static_cast<uint64_t>(decade));
  return sum != nullptr ? *sum : 0.0;
}

std::string RouteRainJoinOperator::SerializeGroupState(
    int group_index) const {
  StateWriter w;
  const auto& rd = route_decade_[group_index];
  w.PutU64(rd.size());
  for (const auto& [route, decade] : rd) {
    w.PutU64(route);
    w.PutI64(decade);
  }
  const auto& dd = decade_delay_[group_index];
  w.PutU64(dd.size());
  for (const auto& [decade, sum] : dd) {
    w.PutI64(decade);
    w.PutDouble(sum);
  }
  return w.Take();
}

Status RouteRainJoinOperator::DeserializeGroupState(int group_index,
                                                    const std::string& data) {
  StateReader r(data);
  uint64_t n = 0;
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  auto& rd = route_decade_[group_index];
  rd.clear();
  rd.Reserve(n);  // final capacity up front, not every power of two
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t route = 0;
    int64_t decade = 0;
    ALBIC_RETURN_NOT_OK(r.GetU64(&route));
    ALBIC_RETURN_NOT_OK(r.GetI64(&decade));
    rd[route] = static_cast<int>(decade);
  }
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  auto& dd = decade_delay_[group_index];
  dd.clear();
  dd.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t decade = 0;
    double sum = 0.0;
    ALBIC_RETURN_NOT_OK(r.GetI64(&decade));
    ALBIC_RETURN_NOT_OK(r.GetDouble(&sum));
    dd[static_cast<int>(decade)] = sum;
  }
  return Status::OK();
}

void RouteRainJoinOperator::ClearGroupState(int group_index) {
  route_decade_[group_index].clear();
  decade_delay_[group_index].clear();
}

}  // namespace albic::ops
