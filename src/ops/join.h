#pragma once

/// \file
/// \brief Real Job 4 rainscore-delay join: enriches route delay
/// aggregates with the latest rainscore.

#include <cstdint>
#include <vector>

#include "common/flat_map64.h"
#include "engine/operator.h"

namespace albic::ops {

/// \brief Real Job 4's join (§5.4): enriches per-route delay aggregates with
/// the latest rainscore for the route and emits the "courier efficiency"
/// contribution — delay summed into the rainscore's decade bucket.
///
/// The two input streams are distinguished by the `aux` convention used by
/// the job builder: rainscore tuples carry decade values in [0, 100] in
/// `num` and `aux == kRainMark`; route-delay tuples carry the route id in
/// `key` and the delay in `num`. State per group: the latest decade per
/// route, plus the per-decade delay sums.
class RouteRainJoinOperator : public engine::StreamOperator {
 public:
  /// \brief Marker the job builder sets in `aux` for rainscore-side tuples.
  static constexpr uint64_t kRainMark = 0xfeed5c0feULL;

  explicit RouteRainJoinOperator(int num_groups);

  void Process(const engine::Tuple& tuple, int group_index,
               engine::Emitter* out) override;
  void ProcessBatch(const engine::TupleBatch& batch, int group_index,
                    engine::Emitter* out) override;

  std::string SerializeGroupState(int group_index) const override;
  Status DeserializeGroupState(int group_index,
                               const std::string& data) override;
  void ClearGroupState(int group_index) override;

  /// \brief Accumulated delay for a rain decade (0, 10, ..., 100).
  double DelayForDecade(int group_index, int decade) const;

 private:
  std::vector<FlatMap64<int>> route_decade_;
  std::vector<FlatMap64<double>> decade_delay_;  ///< keyed by decade (0..100)
};

}  // namespace albic::ops
