#include "ops/topk.h"

#include <algorithm>

#include "ops/serde_util.h"

namespace albic::ops {

WindowedTopKOperator::WindowedTopKOperator(int num_groups, int k,
                                           TopKCountMode mode)
    : k_(k),
      mode_(mode),
      window_counts_(static_cast<size_t>(num_groups)),
      last_top_(static_cast<size_t>(num_groups)) {}

void WindowedTopKOperator::Process(const engine::Tuple& tuple,
                                   int group_index, engine::Emitter* out) {
  (void)out;  // TopK only emits on window boundaries.
  // Track by the auxiliary id when present (article id preserved by the
  // GeoHash operator); otherwise by the partition key itself.
  const uint64_t id = tuple.aux != 0 ? tuple.aux : tuple.key;
  const int64_t weight =
      mode_ == TopKCountMode::kSumNum
          ? std::max<int64_t>(1, static_cast<int64_t>(tuple.num))
          : 1;
  window_counts_[group_index][id] += weight;
  if (engine::StateChangeTracker* t = tracker(group_index)) t->MarkDirty(id);
}

void WindowedTopKOperator::SetIncrementalRehash(bool on) {
  for (auto& m : window_counts_) m.SetIncrementalRehash(on);
}

void WindowedTopKOperator::ProcessBatch(const engine::TupleBatch& batch,
                                        int group_index,
                                        engine::Emitter* out) {
  (void)out;  // TopK only emits on window boundaries.
  // Hoist the group-state lookup and the mode branch out of the loop, and
  // prefetch a few tuples ahead so count-slot probes overlap memory latency.
  constexpr size_t kLookahead = 24;
  auto& counts = window_counts_[group_index];
  engine::StateChangeTracker* track = tracker(group_index);
  const size_t n = batch.size();
  if (mode_ == TopKCountMode::kOccurrences) {
    for (size_t i = 0; i < n; ++i) {
      if (i + kLookahead < n) {
        const engine::Tuple& ahead = batch[i + kLookahead];
        counts.prefetch(ahead.aux != 0 ? ahead.aux : ahead.key);
      }
      const engine::Tuple& tuple = batch[i];
      const uint64_t id = tuple.aux != 0 ? tuple.aux : tuple.key;
      counts[id] += 1;
      if (track != nullptr) track->MarkDirty(id);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (i + kLookahead < n) {
        const engine::Tuple& ahead = batch[i + kLookahead];
        counts.prefetch(ahead.aux != 0 ? ahead.aux : ahead.key);
      }
      const engine::Tuple& tuple = batch[i];
      const uint64_t id = tuple.aux != 0 ? tuple.aux : tuple.key;
      counts[id] += std::max<int64_t>(1, static_cast<int64_t>(tuple.num));
      if (track != nullptr) track->MarkDirty(id);
    }
  }
}

void WindowedTopKOperator::OnWindow(int group_index, engine::Emitter* out) {
  auto& counts = window_counts_[group_index];
  if (counts.empty()) return;
  std::vector<std::pair<uint64_t, int64_t>> entries;
  entries.reserve(counts.size());
  for (const auto& [id, count] : counts) entries.emplace_back(id, count);
  const size_t keep = std::min<size_t>(static_cast<size_t>(k_),
                                       entries.size());
  std::partial_sort(entries.begin(), entries.begin() + keep, entries.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;  // deterministic ties
                    });
  entries.resize(keep);
  for (const auto& [id, count] : entries) {
    engine::Tuple t;
    t.key = id;  // downstream (global TopK) partitions by the id
    t.aux = id;
    t.num = static_cast<double>(count);
    out->Emit(t);
  }
  last_top_[group_index] = std::move(entries);
  counts.clear();
  // The window fire replaced the whole tracked state (counts emptied,
  // last_top_ rewritten): only a base snapshot can describe it — and right
  // after a fire the state is at its smallest, so the base is cheap.
  if (engine::StateChangeTracker* t = tracker(group_index)) t->MarkReset();
}

std::string WindowedTopKOperator::SerializeGroupState(int group_index) const {
  StateWriter w;
  const auto& counts = window_counts_[group_index];
  // Canonical order (sorted by id): the hash map's iteration order depends
  // on its insertion/rehash history, so two maps with identical content can
  // iterate differently. Sorting makes state images content-addressed —
  // checkpoint + replay reconstruction is bit-identical to the live state.
  std::vector<std::pair<uint64_t, int64_t>> entries;
  entries.reserve(counts.size());
  for (const auto& [id, count] : counts) entries.emplace_back(id, count);
  std::sort(entries.begin(), entries.end());
  w.PutU64(entries.size());
  for (const auto& [id, count] : entries) {
    w.PutU64(id);
    w.PutI64(count);
  }
  const auto& top = last_top_[group_index];
  w.PutU64(top.size());
  for (const auto& [id, count] : top) {
    w.PutU64(id);
    w.PutI64(count);
  }
  return w.Take();
}

Status WindowedTopKOperator::DeserializeGroupState(int group_index,
                                                   const std::string& data) {
  StateReader r(data);
  uint64_t n = 0;
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  auto& counts = window_counts_[group_index];
  counts.clear();
  counts.Reserve(n);  // final capacity up front, not every power of two
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    int64_t count = 0;
    ALBIC_RETURN_NOT_OK(r.GetU64(&id));
    ALBIC_RETURN_NOT_OK(r.GetI64(&count));
    counts[id] = count;
  }
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  auto& top = last_top_[group_index];
  top.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    int64_t count = 0;
    ALBIC_RETURN_NOT_OK(r.GetU64(&id));
    ALBIC_RETURN_NOT_OK(r.GetI64(&count));
    top.emplace_back(id, count);
  }
  if (engine::StateChangeTracker* t = tracker(group_index)) t->MarkReset();
  return Status::OK();
}

void WindowedTopKOperator::ClearGroupState(int group_index) {
  window_counts_[group_index].clear();
  last_top_[group_index].clear();
  if (engine::StateChangeTracker* t = tracker(group_index)) t->MarkReset();
}

std::string WindowedTopKOperator::SerializeGroupDelta(int group_index) const {
  StateWriter w;
  WriteMapDelta(w, *tracker(group_index), window_counts_[group_index],
                [](StateWriter& out, int64_t v) { out.PutI64(v); });
  // last_top_ is at most k entries — deltas always carry it whole.
  const auto& top = last_top_[group_index];
  w.PutU64(top.size());
  for (const auto& [id, count] : top) {
    w.PutU64(id);
    w.PutI64(count);
  }
  return w.Take();
}

Status WindowedTopKOperator::ApplyGroupDelta(int group_index,
                                             const std::string& data) {
  StateReader r(data);
  ALBIC_RETURN_NOT_OK(ReadMapDelta(
      r, window_counts_[group_index],
      [](StateReader& in, int64_t* v) { return in.GetI64(v); }));
  uint64_t n = 0;
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  auto& top = last_top_[group_index];
  top.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    int64_t count = 0;
    ALBIC_RETURN_NOT_OK(r.GetU64(&id));
    ALBIC_RETURN_NOT_OK(r.GetI64(&count));
    top.emplace_back(id, count);
  }
  return Status::OK();
}

}  // namespace albic::ops
