#include "ops/extract.h"

#include "ops/serde_util.h"

namespace albic::ops {

DelayExtractOperator::DelayExtractOperator(int num_groups)
    : extracted_(static_cast<size_t>(num_groups), 0) {}

void DelayExtractOperator::Process(const engine::Tuple& tuple,
                                   int group_index, engine::Emitter* out) {
  if (tuple.num <= 0.0) return;  // on-time: nothing to extract
  ++extracted_[group_index];
  out->Emit(tuple);
}

void DelayExtractOperator::ProcessBatch(const engine::TupleBatch& batch,
                                        int group_index,
                                        engine::Emitter* out) {
  // Accumulate the count locally; one group-state store per batch.
  int64_t extracted = 0;
  for (const engine::Tuple& tuple : batch) {
    if (tuple.num <= 0.0) continue;  // on-time: nothing to extract
    ++extracted;
    out->Emit(tuple);
  }
  extracted_[group_index] += extracted;
}

std::string DelayExtractOperator::SerializeGroupState(int group_index) const {
  StateWriter w;
  w.PutI64(extracted_[group_index]);
  return w.Take();
}

Status DelayExtractOperator::DeserializeGroupState(int group_index,
                                                   const std::string& data) {
  StateReader r(data);
  return r.GetI64(&extracted_[group_index]);
}

void DelayExtractOperator::ClearGroupState(int group_index) {
  extracted_[group_index] = 0;
}

}  // namespace albic::ops
