#include "ops/reorder.h"

#include <limits>

#include "ops/serde_util.h"

namespace albic::ops {

ReorderBufferOperator::ReorderBufferOperator(int num_groups, int64_t bound_us)
    : bound_us_(bound_us),
      buffers_(static_cast<size_t>(num_groups)),
      watermark_(static_cast<size_t>(num_groups),
                 std::numeric_limits<int64_t>::min()),
      stragglers_(static_cast<size_t>(num_groups), 0) {}

void ReorderBufferOperator::Process(const engine::Tuple& tuple,
                                    int group_index, engine::Emitter* out) {
  auto& buffer = buffers_[group_index];
  int64_t& watermark = watermark_[group_index];

  if (watermark != std::numeric_limits<int64_t>::min() &&
      tuple.ts < watermark) {
    // Beyond-bound straggler: forward immediately (downstream policy
    // decides; the assumption of §3 is that unorderedness within the bound
    // yields identical results).
    ++stragglers_[group_index];
    out->Emit(tuple);
    return;
  }
  buffer.emplace(tuple.ts, tuple);

  // Advance the watermark and release everything at or below it, in order.
  const int64_t max_ts = buffer.rbegin()->first;
  const int64_t new_watermark = max_ts - bound_us_;
  if (new_watermark > watermark) watermark = new_watermark;
  while (!buffer.empty() && buffer.begin()->first <= watermark) {
    out->Emit(buffer.begin()->second);
    buffer.erase(buffer.begin());
  }
}

void ReorderBufferOperator::Flush(int group_index, engine::Emitter* out) {
  auto& buffer = buffers_[group_index];
  for (const auto& [ts, tuple] : buffer) out->Emit(tuple);
  if (!buffer.empty()) {
    watermark_[group_index] =
        std::max(watermark_[group_index], buffer.rbegin()->first);
  }
  buffer.clear();
}

std::string ReorderBufferOperator::SerializeGroupState(
    int group_index) const {
  StateWriter w;
  w.PutI64(watermark_[group_index]);
  w.PutI64(stragglers_[group_index]);
  w.PutU64(buffers_[group_index].size());
  for (const auto& [ts, t] : buffers_[group_index]) {
    w.PutU64(t.key);
    w.PutI64(t.ts);
    w.PutDouble(t.num);
    w.PutU64(t.aux);
  }
  return w.Take();
}

Status ReorderBufferOperator::DeserializeGroupState(int group_index,
                                                    const std::string& data) {
  StateReader r(data);
  ALBIC_RETURN_NOT_OK(r.GetI64(&watermark_[group_index]));
  ALBIC_RETURN_NOT_OK(r.GetI64(&stragglers_[group_index]));
  uint64_t n = 0;
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  auto& buffer = buffers_[group_index];
  buffer.clear();
  for (uint64_t i = 0; i < n; ++i) {
    engine::Tuple t;
    ALBIC_RETURN_NOT_OK(r.GetU64(&t.key));
    ALBIC_RETURN_NOT_OK(r.GetI64(&t.ts));
    ALBIC_RETURN_NOT_OK(r.GetDouble(&t.num));
    ALBIC_RETURN_NOT_OK(r.GetU64(&t.aux));
    buffer.emplace(t.ts, t);
  }
  return Status::OK();
}

void ReorderBufferOperator::ClearGroupState(int group_index) {
  buffers_[group_index].clear();
  watermark_[group_index] = std::numeric_limits<int64_t>::min();
  stragglers_[group_index] = 0;
}

}  // namespace albic::ops
