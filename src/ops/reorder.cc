#include "ops/reorder.h"

#include <algorithm>
#include <limits>

#include "ops/serde_util.h"

namespace albic::ops {

void ReorderBufferOperator::GroupBuffer::Insert(const engine::Tuple& t) {
  if (tuples == 0) {
    max_ts = t.ts;
  } else {
    max_ts = std::max(max_ts, t.ts);
  }
  std::vector<engine::Tuple>& run =
      by_ts[static_cast<uint64_t>(t.ts)];
  if (run.empty()) pending_ts.push(t.ts);
  run.push_back(t);
  ++tuples;
}

void ReorderBufferOperator::GroupBuffer::Clear() {
  by_ts.clear();
  pending_ts = {};
  tuples = 0;
  max_ts = 0;
}

std::vector<std::pair<int64_t, const std::vector<engine::Tuple>*>>
ReorderBufferOperator::GroupBuffer::SortedRuns() const {
  std::vector<std::pair<int64_t, const std::vector<engine::Tuple>*>> runs;
  runs.reserve(by_ts.size());
  by_ts.ForEach([&](uint64_t, const std::vector<engine::Tuple>& run) {
    runs.emplace_back(run.front().ts, &run);
  });
  std::sort(runs.begin(), runs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return runs;
}

ReorderBufferOperator::ReorderBufferOperator(int num_groups, int64_t bound_us)
    : bound_us_(bound_us),
      buffers_(static_cast<size_t>(num_groups)),
      watermark_(static_cast<size_t>(num_groups),
                 std::numeric_limits<int64_t>::min()),
      stragglers_(static_cast<size_t>(num_groups), 0) {}

void ReorderBufferOperator::Process(const engine::Tuple& tuple,
                                    int group_index, engine::Emitter* out) {
  GroupBuffer& buffer = buffers_[group_index];
  int64_t& watermark = watermark_[group_index];

  if (watermark != std::numeric_limits<int64_t>::min() &&
      tuple.ts < watermark) {
    // Beyond-bound straggler: forward immediately (downstream policy
    // decides; the assumption of §3 is that unorderedness within the bound
    // yields identical results).
    ++stragglers_[group_index];
    out->Emit(tuple);
    return;
  }
  buffer.Insert(tuple);

  // Advance the watermark and release everything at or below it, in
  // timestamp order (ties in arrival order — a run preserves it).
  const int64_t new_watermark = buffer.max_ts - bound_us_;
  if (new_watermark > watermark) watermark = new_watermark;
  while (!buffer.pending_ts.empty() &&
         buffer.pending_ts.top() <= watermark) {
    const int64_t ts = buffer.pending_ts.top();
    buffer.pending_ts.pop();
    const std::vector<engine::Tuple>* run =
        buffer.by_ts.find(static_cast<uint64_t>(ts));
    for (const engine::Tuple& t : *run) out->Emit(t);
    buffer.tuples -= static_cast<int64_t>(run->size());
    buffer.by_ts.erase(static_cast<uint64_t>(ts));
  }
}

void ReorderBufferOperator::Flush(int group_index, engine::Emitter* out) {
  GroupBuffer& buffer = buffers_[group_index];
  for (const auto& [ts, run] : buffer.SortedRuns()) {
    for (const engine::Tuple& t : *run) out->Emit(t);
  }
  if (buffer.tuples > 0) {
    watermark_[group_index] =
        std::max(watermark_[group_index], buffer.max_ts);
  }
  buffer.Clear();
}

std::string ReorderBufferOperator::SerializeGroupState(
    int group_index) const {
  StateWriter w;
  w.PutI64(watermark_[group_index]);
  w.PutI64(stragglers_[group_index]);
  const GroupBuffer& buffer = buffers_[group_index];
  w.PutU64(static_cast<uint64_t>(buffer.tuples));
  for (const auto& [ts, run] : buffer.SortedRuns()) {
    for (const engine::Tuple& t : *run) {
      w.PutU64(t.key);
      w.PutI64(t.ts);
      w.PutDouble(t.num);
      w.PutU64(t.aux);
    }
  }
  return w.Take();
}

Status ReorderBufferOperator::DeserializeGroupState(int group_index,
                                                    const std::string& data) {
  StateReader r(data);
  ALBIC_RETURN_NOT_OK(r.GetI64(&watermark_[group_index]));
  ALBIC_RETURN_NOT_OK(r.GetI64(&stragglers_[group_index]));
  uint64_t n = 0;
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  GroupBuffer& buffer = buffers_[group_index];
  buffer.Clear();
  for (uint64_t i = 0; i < n; ++i) {
    engine::Tuple t;
    ALBIC_RETURN_NOT_OK(r.GetU64(&t.key));
    ALBIC_RETURN_NOT_OK(r.GetI64(&t.ts));
    ALBIC_RETURN_NOT_OK(r.GetDouble(&t.num));
    ALBIC_RETURN_NOT_OK(r.GetU64(&t.aux));
    buffer.Insert(t);
  }
  return Status::OK();
}

void ReorderBufferOperator::ClearGroupState(int group_index) {
  buffers_[group_index].Clear();
  watermark_[group_index] = std::numeric_limits<int64_t>::min();
  stragglers_[group_index] = 0;
}

}  // namespace albic::ops
