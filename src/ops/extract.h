#pragma once

/// \file
/// \brief Real Job 2 delay extraction: filters on-time flights and re-
/// keys delayed ones by airplane.

#include <cstdint>
#include <vector>

#include "engine/operator.h"

namespace albic::ops {

/// \brief Real Job 2's first operator (§5.4): extracts delay information
/// from raw flight records — on-time flights (zero delay) are dropped,
/// delayed ones forwarded keyed by airplane. Keeps a per-group count of
/// extracted records as migratable state.
class DelayExtractOperator : public engine::StreamOperator {
 public:
  explicit DelayExtractOperator(int num_groups);

  void Process(const engine::Tuple& tuple, int group_index,
               engine::Emitter* out) override;
  void ProcessBatch(const engine::TupleBatch& batch, int group_index,
                    engine::Emitter* out) override;

  std::string SerializeGroupState(int group_index) const override;
  Status DeserializeGroupState(int group_index,
                               const std::string& data) override;
  void ClearGroupState(int group_index) override;

  int64_t extracted(int group_index) const { return extracted_[group_index]; }

 private:
  std::vector<int64_t> extracted_;
};

}  // namespace albic::ops
