#include "ops/rainscore.h"

#include <algorithm>

#include "ops/serde_util.h"

namespace albic::ops {

RainScoreOperator::RainScoreOperator(int num_groups)
    : max_precip_(static_cast<size_t>(num_groups)) {}

void RainScoreOperator::Process(const engine::Tuple& tuple, int group_index,
                                engine::Emitter* out) {
  double& max = max_precip_[group_index][tuple.key];
  max = std::max(max, tuple.num);
  const double score = max > 0.0 ? 100.0 * tuple.num / max : 0.0;
  const int decade = std::clamp(static_cast<int>(score / 10.0) * 10, 0, 100);
  engine::Tuple t = tuple;
  t.num = static_cast<double>(decade);
  out->Emit(t);
}

double RainScoreOperator::MaxFor(int group_index, uint64_t station) const {
  const auto& m = max_precip_[group_index];
  auto it = m.find(station);
  return it == m.end() ? 0.0 : it->second;
}

std::string RainScoreOperator::SerializeGroupState(int group_index) const {
  StateWriter w;
  const auto& m = max_precip_[group_index];
  w.PutU64(m.size());
  for (const auto& [station, max] : m) {
    w.PutU64(station);
    w.PutDouble(max);
  }
  return w.Take();
}

Status RainScoreOperator::DeserializeGroupState(int group_index,
                                                const std::string& data) {
  StateReader r(data);
  uint64_t n = 0;
  ALBIC_RETURN_NOT_OK(r.GetU64(&n));
  auto& m = max_precip_[group_index];
  m.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t station = 0;
    double max = 0.0;
    ALBIC_RETURN_NOT_OK(r.GetU64(&station));
    ALBIC_RETURN_NOT_OK(r.GetDouble(&max));
    m[station] = max;
  }
  return Status::OK();
}

void RainScoreOperator::ClearGroupState(int group_index) {
  max_precip_[group_index].clear();
}

}  // namespace albic::ops
