// Engine latency telemetry: enabling it must not change any output
// (bit-identity), it must populate the end-to-end / queueing / service
// histograms in both execution modes, buffered tuples must account the
// modeled migration pause as latency, and HarvestPeriod must reset the
// running histograms.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/local_engine.h"
#include "engine/migration.h"
#include "ops/aggregate.h"
#include "ops/geohash.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::Tuple;

constexpr int kNodes = 4;
constexpr int kGroups = 8;
constexpr int64_t kWindowUs = 60LL * 1000 * 1000;

/// The wiki pipeline (geohash -> windowed topk -> global topk) with a
/// configurable telemetry sampling interval.
struct Pipeline {
  engine::Topology topo;
  engine::Cluster cluster{kNodes};
  ops::GeoHashOperator geohash{kGroups, 256};
  ops::WindowedTopKOperator topk{kGroups, 16};
  ops::WindowedTopKOperator global{kGroups, 16, ops::TopKCountMode::kSumNum};
  std::unique_ptr<engine::LocalEngine> engine;

  explicit Pipeline(int sample_every,
                    engine::ExecutionMode mode = engine::ExecutionMode::kBatched,
                    int num_workers = 1) {
    topo.AddOperator("geohash", kGroups, 1 << 14);
    topo.AddOperator("topk", kGroups, 1 << 14);
    topo.AddOperator("global", kGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kNodes);
    }
    engine::LocalEngineOptions opts;
    opts.window_every_us = kWindowUs;
    opts.mode = mode;
    opts.num_workers = num_workers;
    opts.latency_sample_every = sample_every;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global}, opts);
  }

  std::string StateOf(KeyGroupId g) {
    engine::StreamOperator* ops[] = {&geohash, &topk, &global};
    return ops[topo.group_operator(g)]->SerializeGroupState(
        topo.group_index_in_operator(g));
  }

  std::map<uint64_t, int64_t> GlobalCounts() const {
    std::map<uint64_t, int64_t> out;
    for (int g = 0; g < kGroups; ++g) {
      for (const auto& [article, count] : global.last_window_top(g)) {
        out[article] += count;
      }
    }
    return out;
  }
};

std::vector<Tuple> MakeStream(int tuples) {
  workload::WikipediaEditStream edits(/*articles=*/300, /*seed=*/5,
                                      /*rate_per_second=*/400.0);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(tuples));
  for (int i = 0; i < tuples; ++i) out.push_back(edits.Next());
  return out;
}

TEST(LatencyTelemetryTest, DisabledByDefaultAndInert) {
  Pipeline p(/*sample_every=*/0);
  EXPECT_FALSE(p.engine->latency_telemetry_enabled());
  const std::vector<Tuple> stream = MakeStream(5000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  EXPECT_FALSE(stats.latency.enabled);
  EXPECT_EQ(stats.latency.e2e_us.count(), 0);
  EXPECT_EQ(p.engine->PeekLatency().e2e_count, 0);
}

TEST(LatencyTelemetryTest, OutputsBitIdenticalWithTelemetryEnabled) {
  const std::vector<Tuple> stream = MakeStream(60000);
  Pipeline off(/*sample_every=*/0);
  Pipeline on(/*sample_every=*/32);
  ASSERT_TRUE(off.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  ASSERT_TRUE(on.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  off.engine->Flush();
  on.engine->Flush();

  // Bit-identity: every group's canonical state and the merged windowed
  // answer agree — telemetry observes, never steers.
  for (KeyGroupId g = 0; g < off.topo.num_key_groups(); ++g) {
    EXPECT_EQ(off.StateOf(g), on.StateOf(g)) << "group " << g;
  }
  ASSERT_FALSE(off.GlobalCounts().empty());
  EXPECT_EQ(off.GlobalCounts(), on.GlobalCounts());

  // The telemetry run measured the pipeline: queueing delay on every hop,
  // service time per operator, end-to-end at the sink (the global top-k
  // only receives window-fire aggregates, so e2e samples exist once the
  // first window closed).
  engine::EnginePeriodStats stats = on.engine->HarvestPeriod();
  ASSERT_TRUE(stats.latency.enabled);
  EXPECT_GT(stats.latency.queue_us.count(), 0);
  ASSERT_EQ(stats.latency.op_service_us.size(), 3u);
  EXPECT_GT(stats.latency.op_service_us[0].count(), 0);  // geohash
  EXPECT_GT(stats.latency.op_service_us[1].count(), 0);  // topk
  EXPECT_GT(stats.latency.e2e_us.count(), 0);
  // Per-(operator, key-group) service accounting saw every delivered tuple
  // of the geohash operator.
  int64_t geohash_tuples = 0;
  for (int gi = 0; gi < kGroups; ++gi) {
    geohash_tuples += stats.latency.group_service[gi].tuples;
  }
  EXPECT_EQ(geohash_tuples, static_cast<int64_t>(stream.size()));
}

TEST(LatencyTelemetryTest, TupleAtATimeSamplesEndToEnd) {
  const std::vector<Tuple> stream = MakeStream(60000);
  Pipeline p(/*sample_every=*/32, engine::ExecutionMode::kTupleAtATime);
  for (const Tuple& t : stream) ASSERT_TRUE(p.engine->Inject(0, t).ok());
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_TRUE(stats.latency.enabled);
  // Legacy mode carries end-to-end sampling only (no mailboxes to queue
  // in, per-tuple service timing would dwarf the work measured).
  EXPECT_GT(stats.latency.e2e_us.count(), 0);
  EXPECT_EQ(stats.latency.queue_us.count(), 0);
}

TEST(LatencyTelemetryTest, MultiWorkerMergesWorkerHistograms) {
  const std::vector<Tuple> stream = MakeStream(60000);
  Pipeline p1(/*sample_every=*/32, engine::ExecutionMode::kBatched, 1);
  Pipeline p2(/*sample_every=*/32, engine::ExecutionMode::kBatched, 2);
  ASSERT_TRUE(p1.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  ASSERT_TRUE(p2.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p1.engine->Flush();
  p2.engine->Flush();
  engine::EnginePeriodStats s1 = p1.engine->HarvestPeriod();
  engine::EnginePeriodStats s2 = p2.engine->HarvestPeriod();
  // The wave schedule (and therefore which tuples reach which operator)
  // is identical; the workers' measurements all fold into the period at
  // the wave barriers, so no delivered tuple goes unaccounted.
  int64_t t1 = 0;
  int64_t t2 = 0;
  for (int gi = 0; gi < kGroups; ++gi) {
    t1 += s1.latency.group_service[gi].tuples;
    t2 += s2.latency.group_service[gi].tuples;
  }
  EXPECT_EQ(t1, t2);
  EXPECT_GT(s2.latency.e2e_us.count(), 0);
  EXPECT_EQ(s1.latency.e2e_us.count(), s2.latency.e2e_us.count());
}

TEST(LatencyTelemetryTest, MigrationPauseAccountedForBufferedTuples) {
  // A terminal sum operator with per-key state: tuples that arrive while
  // the group migrates must surface the modeled pause as end-to-end
  // latency (the buffered tuples sat it out).
  engine::Topology topo;
  topo.AddOperator("sum", kGroups, 1 << 14);
  engine::Cluster cluster(2);
  engine::Assignment assign(kGroups);
  for (KeyGroupId g = 0; g < kGroups; ++g) assign.set_node(g, g % 2);
  ops::SumByKeyOperator sum(kGroups, ops::GroupField::kKey,
                            /*emit_updates=*/false);
  engine::LocalEngineOptions opts;
  opts.mode = engine::ExecutionMode::kBatched;
  opts.window_every_us = 0;
  opts.latency_sample_every = 8;
  engine::LocalEngine eng(&topo, &cluster, assign, {&sum}, opts);

  // Build state on every group, then migrate group 0 with tuples in the
  // buffer window.
  std::vector<Tuple> warm;
  for (int i = 0; i < 20000; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i);
    t.ts = i;
    t.num = 1.0;
    warm.push_back(t);
  }
  ASSERT_TRUE(eng.InjectBatch(0, warm.data(), warm.size()).ok());
  eng.Flush();
  (void)eng.HarvestPeriod();  // isolate the migration period

  ASSERT_TRUE(eng.StartMigration(0, 1).ok());
  std::vector<Tuple> during;
  for (int i = 0; i < 2000; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i);
    t.ts = 20000 + i;
    t.num = 1.0;
    during.push_back(t);
  }
  ASSERT_TRUE(eng.InjectBatch(0, during.data(), during.size()).ok());
  eng.Flush();
  const auto pause = eng.FinishMigration(0);
  ASSERT_TRUE(pause.ok());
  ASSERT_GT(*pause, 0.0);

  engine::EnginePeriodStats stats = eng.HarvestPeriod();
  ASSERT_GT(stats.tuples_buffered, 0);
  // Each buffered tuple recorded one stall sample of the modeled pause...
  EXPECT_EQ(stats.latency.stall_e2e_us.count(), stats.tuples_buffered);
  EXPECT_GE(stats.latency.stall_e2e_us.max(),
            static_cast<int64_t>(*pause * 0.99));
  // ...which the reported summary folds into the end-to-end percentiles,
  EXPECT_GE(engine::LatencySummary::FromPeriod(stats.latency).e2e_max_us,
            static_cast<int64_t>(*pause * 0.99));
  // ...while the SLO trigger's live peek sees only wall-clock latency —
  // the controller must not re-trigger on its own reconfiguration cost.
  EXPECT_LT(stats.latency.e2e_us.max(), static_cast<int64_t>(*pause * 0.99));
}

TEST(LatencyTelemetryTest, HarvestResetsRunningHistograms) {
  Pipeline p(/*sample_every=*/16);
  const std::vector<Tuple> stream = MakeStream(20000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  EXPECT_GT(p.engine->PeekLatency().e2e_count +
                p.engine->HarvestPeriod().latency.queue_us.count(),
            0);
  const engine::LatencySummary after = p.engine->PeekLatency();
  EXPECT_EQ(after.e2e_count, 0);
  EXPECT_EQ(after.e2e_p99_us, 0);
  engine::EnginePeriodStats next = p.engine->HarvestPeriod();
  EXPECT_TRUE(next.latency.enabled);
  EXPECT_EQ(next.latency.queue_us.count(), 0);
}

}  // namespace
}  // namespace albic
