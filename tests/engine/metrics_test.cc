// LogHistogram: bucket-edge behaviour (underflow, overflow, exact small
// values), randomized differential percentiles against a sorted-sample
// ground truth, and cross-histogram merge equivalence (the property the
// per-worker wave merge relies on).

#include "engine/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace albic::engine {
namespace {

/// Ground truth: nearest-rank percentile over the raw samples.
int64_t ExactPercentile(std::vector<int64_t> sorted, double p) {
  const int64_t n = static_cast<int64_t>(sorted.size());
  int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(p / 100.0 * static_cast<double>(n) + 0.5));
  rank = std::min(rank, n);
  return sorted[static_cast<size_t>(rank - 1)];
}

TEST(LogHistogramTest, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(50.0), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(LogHistogramTest, SmallValuesAreExact) {
  // Values below kSubBuckets each own a unit-wide bucket: percentiles over
  // them are exact, not approximate.
  LogHistogram h;
  for (int64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    h.Record(v);
    EXPECT_EQ(LogHistogram::BucketLowerBound(LogHistogram::BucketIndex(v)), v);
    EXPECT_EQ(LogHistogram::BucketUpperBound(LogHistogram::BucketIndex(v)),
              v + 1);
  }
  EXPECT_EQ(h.count(), LogHistogram::kSubBuckets);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), LogHistogram::kSubBuckets - 1);
  EXPECT_EQ(h.Percentile(100.0), LogHistogram::kSubBuckets - 1);
}

TEST(LogHistogramTest, UnderflowClampsToZeroBucket) {
  LogHistogram h;
  h.Record(-5);
  h.Record(-1);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Percentile(99.0), 0);
}

TEST(LogHistogramTest, OverflowClampsToMaxTrackable) {
  LogHistogram h;
  h.Record(LogHistogram::kMaxTrackable);          // first overflowing value
  h.Record(LogHistogram::kMaxTrackable * 1000);   // far past the range
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.bucket_count(LogHistogram::kOverflowBucket), 2);
  EXPECT_EQ(h.max(), LogHistogram::kMaxTrackable);
  EXPECT_EQ(h.Percentile(99.0), LogHistogram::kMaxTrackable);
  // The largest in-range value still lands in a real bucket.
  EXPECT_LT(LogHistogram::BucketIndex(LogHistogram::kMaxTrackable - 1),
            LogHistogram::kOverflowBucket);
}

TEST(LogHistogramTest, BucketEdgesAreContiguous) {
  // Every bucket's upper bound is the next bucket's lower bound, and each
  // boundary value maps into the bucket it lower-bounds.
  for (int idx = 0; idx < LogHistogram::kNumBuckets; ++idx) {
    EXPECT_EQ(LogHistogram::BucketUpperBound(idx),
              LogHistogram::BucketLowerBound(idx + 1))
        << "bucket " << idx;
    EXPECT_EQ(LogHistogram::BucketIndex(LogHistogram::BucketLowerBound(idx)),
              idx)
        << "bucket " << idx;
  }
}

TEST(LogHistogramTest, SingleValueReportsItExactly) {
  LogHistogram h;
  h.RecordN(12345, 7);
  EXPECT_EQ(h.Percentile(0.0), 12345);
  EXPECT_EQ(h.Percentile(50.0), 12345);
  EXPECT_EQ(h.Percentile(100.0), 12345);
  EXPECT_DOUBLE_EQ(h.Mean(), 12345.0);
}

TEST(LogHistogramTest, RandomizedDifferentialPercentiles) {
  // Mixed distributions spanning the whole bucket range; the histogram's
  // percentile must stay within the log-bucket relative error (2^-kSubBits)
  // of the sorted-sample ground truth.
  const double rel_tol = 1.0 / (1 << LogHistogram::kSubBits);
  Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    LogHistogram h;
    std::vector<int64_t> samples;
    const int n = 1000 + static_cast<int>(rng.Index(9000));
    for (int i = 0; i < n; ++i) {
      int64_t v;
      switch (rng.Index(3)) {
        case 0:  // uniform small
          v = static_cast<int64_t>(rng.Index(500));
          break;
        case 1:  // log-uniform over ~9 decades
          v = static_cast<int64_t>(std::pow(10.0, rng.Uniform(0.0, 9.0)));
          break;
        default:  // heavy tail around 1ms
          v = static_cast<int64_t>(1000.0 * std::exp(rng.Uniform(-2.0, 4.0)));
          break;
      }
      samples.push_back(v);
      h.Record(v);
    }
    std::sort(samples.begin(), samples.end());
    ASSERT_EQ(h.count(), n);
    EXPECT_EQ(h.min(), samples.front());
    EXPECT_EQ(h.max(), samples.back());
    for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
      const int64_t exact = ExactPercentile(samples, p);
      const int64_t approx = h.Percentile(p);
      // Allow one extra unit for nearest-rank vs interpolation skew in
      // addition to the relative bucket width.
      const double tol = rel_tol * static_cast<double>(exact) + 1.0;
      EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact), tol)
          << "trial " << trial << " p" << p;
    }
  }
}

TEST(LogHistogramTest, MergeMatchesPooledRecording) {
  // Split one sample stream across 4 histograms (as the worker contexts
  // do), merge them, and require bit-identical buckets and percentiles to
  // recording everything into one histogram.
  Rng rng(99);
  LogHistogram pooled;
  LogHistogram parts[4];
  for (int i = 0; i < 20000; ++i) {
    const int64_t v =
        static_cast<int64_t>(std::pow(10.0, rng.Uniform(0.0, 7.0)));
    pooled.Record(v);
    parts[rng.Index(4)].Record(v);
  }
  LogHistogram merged;
  for (LogHistogram& part : parts) merged.Merge(part);
  ASSERT_EQ(merged.count(), pooled.count());
  EXPECT_EQ(merged.min(), pooled.min());
  EXPECT_EQ(merged.max(), pooled.max());
  for (int idx = 0; idx <= LogHistogram::kNumBuckets; ++idx) {
    ASSERT_EQ(merged.bucket_count(idx), pooled.bucket_count(idx))
        << "bucket " << idx;
  }
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0, 99.99}) {
    EXPECT_EQ(merged.Percentile(p), pooled.Percentile(p)) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(merged.Mean(), pooled.Mean());
}

TEST(LogHistogramTest, ClearResets) {
  LogHistogram h;
  h.RecordN(500, 10);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50.0), 0);
  h.Record(7);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 7);
}

TEST(LatencySummaryTest, FromPeriodReportsPercentiles) {
  LatencyPeriodStats period;
  period.EnableFor(/*num_operators=*/2, /*num_key_groups=*/4);
  for (int i = 1; i <= 100; ++i) period.e2e_us.Record(i * 10);
  period.queue_us.Record(42);
  const LatencySummary s = LatencySummary::FromPeriod(period);
  EXPECT_EQ(s.e2e_count, 100);
  EXPECT_NEAR(static_cast<double>(s.e2e_p50_us), 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(static_cast<double>(s.e2e_p99_us), 990.0, 990.0 / 16 + 1);
  EXPECT_EQ(s.e2e_max_us, 1000);
  EXPECT_GT(s.queue_p99_us, 0);
  // Disabled periods summarize to zeros.
  const LatencySummary empty = LatencySummary::FromPeriod(LatencyPeriodStats{});
  EXPECT_EQ(empty.e2e_count, 0);
  EXPECT_EQ(empty.e2e_p99_us, 0);
}

}  // namespace
}  // namespace albic::engine
