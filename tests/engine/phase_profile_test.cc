// Engine wave-phase profiling: off by default and inert; when on, the
// phase decomposition must cover >=95% of the period's measured wall time
// (the causal-attribution acceptance bar), per-group service attribution
// must sum to the service phase, reconfiguration work must land in its
// own phases, outputs must stay bit-identical, and the per-phase counters
// must reach the metrics registry.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/profiler.h"
#include "engine/local_engine.h"
#include "engine/migration.h"
#include "ops/geohash.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::Tuple;

constexpr int kNodes = 4;
constexpr int kGroups = 8;
constexpr int64_t kWindowUs = 60LL * 1000 * 1000;

int P(WavePhase p) { return static_cast<int>(p); }

/// The wiki pipeline with configurable profiling/telemetry switches.
struct Pipeline {
  engine::Topology topo;
  engine::Cluster cluster{kNodes};
  ops::GeoHashOperator geohash{kGroups, 256};
  ops::WindowedTopKOperator topk{kGroups, 16};
  ops::WindowedTopKOperator global{kGroups, 16, ops::TopKCountMode::kSumNum};
  std::unique_ptr<engine::LocalEngine> engine;

  explicit Pipeline(bool profile, int latency_sample_every = 0,
                    int journey_sample_every = 0, int num_workers = 1,
                    MetricsRegistry* metrics = nullptr) {
    topo.AddOperator("geohash", kGroups, 1 << 14);
    topo.AddOperator("topk", kGroups, 1 << 14);
    topo.AddOperator("global", kGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kNodes);
    }
    engine::LocalEngineOptions opts;
    opts.window_every_us = kWindowUs;
    opts.mode = engine::ExecutionMode::kBatched;
    opts.num_workers = num_workers;
    opts.profile_wave_phases = profile;
    opts.latency_sample_every = latency_sample_every;
    opts.journey_sample_every = journey_sample_every;
    opts.metrics = metrics;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global}, opts);
  }

  std::string StateOf(KeyGroupId g) {
    engine::StreamOperator* ops[] = {&geohash, &topk, &global};
    return ops[topo.group_operator(g)]->SerializeGroupState(
        topo.group_index_in_operator(g));
  }

  std::map<uint64_t, int64_t> GlobalCounts() const {
    std::map<uint64_t, int64_t> out;
    for (int g = 0; g < kGroups; ++g) {
      for (const auto& [article, count] : global.last_window_top(g)) {
        out[article] += count;
      }
    }
    return out;
  }
};

std::vector<Tuple> MakeStream(int tuples) {
  workload::WikipediaEditStream edits(/*articles=*/300, /*seed=*/5,
                                      /*rate_per_second=*/400.0);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(tuples));
  for (int i = 0; i < tuples; ++i) out.push_back(edits.Next());
  return out;
}

int64_t ServiceAttributionSum(const engine::EnginePeriodStats& stats) {
  int64_t sum = 0;
  for (const int64_t v : stats.phases.group_service_ns) sum += v;
  return sum;
}

TEST(PhaseProfileTest, DisabledByDefaultAndInert) {
  Pipeline p(/*profile=*/false);
  EXPECT_FALSE(p.engine->phase_profiling_enabled());
  const std::vector<Tuple> stream = MakeStream(5000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  EXPECT_FALSE(stats.phases.enabled);
  EXPECT_EQ(stats.phases.TotalNs(), 0);
  EXPECT_EQ(stats.phases.wall_ns, 0);
}

TEST(PhaseProfileTest, BreakdownCoversWallTimeSingleWorker) {
  Pipeline p(/*profile=*/true);
  const std::vector<Tuple> stream = MakeStream(60000);
  ASSERT_TRUE(p.engine->phase_profiling_enabled());
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_TRUE(stats.phases.enabled);
  ASSERT_GT(stats.phases.wall_ns, 0);
  // The acceptance invariant: phases explain >=95% of measured wall time.
  // On the driving thread the accounting is exclusive, so coverage is in
  // fact ~100%; 95% leaves room for the clock reads themselves.
  EXPECT_GE(stats.phases.Coverage(), 0.95);
  // A real run did real work in the pipeline phases.
  EXPECT_GT(stats.phases.ns[P(WavePhase::kIngest)], 0);
  EXPECT_GT(stats.phases.ns[P(WavePhase::kService)], 0);
  EXPECT_GT(stats.phases.ns[P(WavePhase::kWaveBarrier)], 0);
  // Per-group attribution is exact: it is carved from the same interval
  // stamps that charge the service phase.
  EXPECT_EQ(ServiceAttributionSum(stats), stats.phases.ns[P(WavePhase::kService)]);
  EXPECT_EQ(stats.phases.group_service_ns.size(),
            static_cast<size_t>(p.topo.num_key_groups()));

  // Harvest resets: the next period starts from zero but stays enabled.
  engine::EnginePeriodStats next = p.engine->HarvestPeriod();
  EXPECT_TRUE(next.phases.enabled);
  EXPECT_EQ(next.phases.ns[P(WavePhase::kService)], 0);
}

TEST(PhaseProfileTest, BreakdownCoversWallTimeMultiWorker) {
  Pipeline p(/*profile=*/true, /*latency_sample_every=*/0,
             /*journey_sample_every=*/0, /*num_workers=*/3);
  const std::vector<Tuple> stream = MakeStream(60000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_TRUE(stats.phases.enabled);
  ASSERT_GT(stats.phases.wall_ns, 0);
  // Pool workers fold their (non-idle) thread time on top of the driving
  // thread's exclusive decomposition, so coverage can only grow past the
  // single-worker ~100%.
  EXPECT_GE(stats.phases.Coverage(), 0.95);
  EXPECT_GT(stats.phases.ns[P(WavePhase::kService)], 0);
  EXPECT_EQ(ServiceAttributionSum(stats), stats.phases.ns[P(WavePhase::kService)]);
}

TEST(PhaseProfileTest, ReconfigurationWorkLandsInItsOwnPhases) {
  Pipeline p(/*profile=*/true);
  const std::vector<Tuple> stream = MakeStream(30000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  (void)p.engine->HarvestPeriod();

  // A direct migration in the next period: its stamps must be charged to
  // the migration phase, not blur into service or idle.
  const engine::NodeId from = p.engine->assignment().node_of(0);
  const engine::NodeId to = (from + 1) % kNodes;
  ASSERT_TRUE(
      p.engine->MigrateGroup(0, to, engine::MigrationMode::kDirect).ok());
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_TRUE(stats.phases.enabled);
  EXPECT_GT(stats.phases.ns[P(WavePhase::kMigration)], 0);
  EXPECT_GE(stats.phases.Coverage(), 0.95);
}

TEST(PhaseProfileTest, OutputsBitIdenticalWithFullAttributionEnabled) {
  const std::vector<Tuple> stream = MakeStream(60000);
  Pipeline off(/*profile=*/false);
  // The full observability stack: latency telemetry, phase profiling and
  // journey sampling all on at once.
  Pipeline on(/*profile=*/true, /*latency_sample_every=*/32,
              /*journey_sample_every=*/512);
  ASSERT_TRUE(on.engine->journey_sampling_enabled());
  ASSERT_TRUE(off.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  ASSERT_TRUE(on.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  off.engine->Flush();
  on.engine->Flush();
  for (KeyGroupId g = 0; g < off.topo.num_key_groups(); ++g) {
    EXPECT_EQ(off.StateOf(g), on.StateOf(g)) << "group " << g;
  }
  ASSERT_FALSE(off.GlobalCounts().empty());
  EXPECT_EQ(off.GlobalCounts(), on.GlobalCounts());
}

TEST(PhaseProfileTest, PublishesPerPhaseCountersToTheRegistry) {
  MetricsRegistry reg;
  Pipeline p(/*profile=*/true, /*latency_sample_every=*/0,
             /*journey_sample_every=*/0, /*num_workers=*/1, &reg);
  const std::vector<Tuple> stream = MakeStream(30000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_TRUE(stats.phases.enabled);
  // The published series mirror the harvested breakdown, phase by phase.
  for (int ph = 0; ph < kNumWavePhases; ++ph) {
    CounterMetric* c = reg.Counter(
        "engine_phase_ns_total",
        {{"phase", WavePhaseName(static_cast<WavePhase>(ph))}});
    EXPECT_EQ(c->value(), stats.phases.ns[ph])
        << WavePhaseName(static_cast<WavePhase>(ph));
  }
}

}  // namespace
}  // namespace albic
