// The batched runtime must be a drop-in replacement for the synchronous
// tuple-at-a-time path: with num_workers = 1 it produces identical
// EnginePeriodStats and operator outputs on the Real Job 1 pipeline
// (including across migrations), migrations started while batches are
// staged buffer and drain in arrival order, and multi-worker execution
// reaches the same final state.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "engine/local_engine.h"
#include "ops/geohash.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::ExecutionMode;
using engine::KeyGroupId;
using engine::Tuple;

constexpr int kNodes = 4;
constexpr int kGroups = 8;

struct Pipeline {
  engine::Topology topo;
  engine::Cluster cluster{kNodes};
  ops::GeoHashOperator geohash{kGroups, 256};
  ops::WindowedTopKOperator topk{kGroups, 64};
  ops::WindowedTopKOperator global{kGroups, 64, ops::TopKCountMode::kSumNum};
  std::unique_ptr<engine::LocalEngine> engine;

  explicit Pipeline(engine::LocalEngineOptions opts) {
    topo.AddOperator("geohash", kGroups, 1 << 14);
    topo.AddOperator("topk", kGroups, 1 << 14);
    topo.AddOperator("global", kGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kNodes);
    }
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global}, opts);
  }

  /// Runs the wiki edit stream with a rotating migration every 2000 tuples
  /// and returns the final period's statistics.
  engine::EnginePeriodStats RunWiki(int tuples) {
    workload::WikipediaEditStream edits(300, 101, /*rate_per_second=*/400.0);
    for (int i = 0; i < tuples; ++i) {
      EXPECT_TRUE(engine->Inject(0, edits.Next()).ok());
      if (i % 2000 == 1999) {
        const KeyGroupId g =
            static_cast<KeyGroupId>((i / 2000) % topo.num_key_groups());
        const engine::NodeId target =
            (engine->assignment().node_of(g) + 1) % kNodes;
        engine->Flush();  // migrate between batches, as the controller does
        EXPECT_TRUE(engine->MigrateGroup(g, target).ok());
      }
    }
    engine->Flush();
    return engine->HarvestPeriod();
  }

  std::map<uint64_t, int64_t> GlobalCounts() const {
    std::map<uint64_t, int64_t> out;
    for (int g = 0; g < kGroups; ++g) {
      for (const auto& [article, count] : global.last_window_top(g)) {
        out[article] += count;
      }
    }
    return out;
  }
};

void ExpectStatsEqual(const engine::EnginePeriodStats& a,
                      const engine::EnginePeriodStats& b) {
  ASSERT_EQ(a.group_work.size(), b.group_work.size());
  for (size_t g = 0; g < a.group_work.size(); ++g) {
    EXPECT_EQ(a.group_work[g], b.group_work[g]) << "group " << g;
  }
  ASSERT_EQ(a.node_work.size(), b.node_work.size());
  for (size_t n = 0; n < a.node_work.size(); ++n) {
    EXPECT_EQ(a.node_work[n], b.node_work[n]) << "node " << n;
  }
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.tuples_buffered, b.tuples_buffered);
  EXPECT_EQ(a.migration_pause_us, b.migration_pause_us);
  ASSERT_EQ(a.comm.num_groups(), b.comm.num_groups());
  for (KeyGroupId from = 0; from < a.comm.num_groups(); ++from) {
    for (KeyGroupId to = 0; to < a.comm.num_groups(); ++to) {
      EXPECT_EQ(a.comm.Rate(from, to), b.comm.Rate(from, to))
          << "comm " << from << " -> " << to;
    }
  }
}

TEST(BatchedRuntimeTest, SingleWorkerMatchesTupleAtATimeOnWikiPipeline) {
  engine::LocalEngineOptions legacy_opts;
  Pipeline legacy(legacy_opts);

  engine::LocalEngineOptions batched_opts;
  batched_opts.mode = ExecutionMode::kBatched;
  batched_opts.num_workers = 1;
  Pipeline batched(batched_opts);

  constexpr int kTuples = 70000;  // > 2 one-minute windows at 400 tuples/s
  engine::EnginePeriodStats legacy_stats = legacy.RunWiki(kTuples);
  engine::EnginePeriodStats batched_stats = batched.RunWiki(kTuples);

  ExpectStatsEqual(legacy_stats, batched_stats);

  // The job answer must be identical too: same per-window global counts.
  std::map<uint64_t, int64_t> a = legacy.GlobalCounts();
  std::map<uint64_t, int64_t> b = batched.GlobalCounts();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // And the rotating migrations must have landed both engines on the same
  // allocation.
  EXPECT_TRUE(legacy.engine->assignment() == batched.engine->assignment());
}

TEST(BatchedRuntimeTest, MultiWorkerMatchesSingleWorker) {
  engine::LocalEngineOptions one;
  one.mode = ExecutionMode::kBatched;
  one.num_workers = 1;
  Pipeline single(one);

  engine::LocalEngineOptions four;
  four.mode = ExecutionMode::kBatched;
  four.num_workers = 4;
  Pipeline multi(four);

  constexpr int kTuples = 30000;
  engine::EnginePeriodStats s1 = single.RunWiki(kTuples);
  engine::EnginePeriodStats s4 = multi.RunWiki(kTuples);

  // All work/serde constants in this job are exactly representable, so the
  // sums must agree exactly regardless of the merge order.
  ExpectStatsEqual(s1, s4);
  EXPECT_EQ(single.GlobalCounts(), multi.GlobalCounts());
}

TEST(BatchedRuntimeTest, InjectBatchMatchesPerTupleInject) {
  engine::LocalEngineOptions legacy_opts;
  Pipeline legacy(legacy_opts);

  engine::LocalEngineOptions batched_opts;
  batched_opts.mode = ExecutionMode::kBatched;
  batched_opts.num_workers = 1;
  Pipeline batched(batched_opts);

  // Same stream, ingested per tuple on the legacy engine and in arbitrary
  // chunk sizes on the batched one.
  constexpr int kTuples = 50000;
  workload::WikipediaEditStream edits(300, 101, /*rate_per_second=*/400.0);
  std::vector<Tuple> stream;
  stream.reserve(kTuples);
  for (int i = 0; i < kTuples; ++i) stream.push_back(edits.Next());

  for (const Tuple& t : stream) ASSERT_TRUE(legacy.engine->Inject(0, t).ok());
  size_t offset = 0;
  const size_t chunks[] = {1, 7, 1000, 40000, 8992};
  for (size_t chunk : chunks) {
    ASSERT_TRUE(
        batched.engine->InjectBatch(0, stream.data() + offset, chunk).ok());
    offset += chunk;
  }
  ASSERT_EQ(offset, stream.size());

  legacy.engine->Flush();
  batched.engine->Flush();
  ExpectStatsEqual(legacy.engine->HarvestPeriod(),
                   batched.engine->HarvestPeriod());
  EXPECT_EQ(legacy.GlobalCounts(), batched.GlobalCounts());
}

/// Records the order in which tuples reach each group (via tuple.num).
class RecordingOperator : public engine::StreamOperator {
 public:
  explicit RecordingOperator(int num_groups) : seen_(num_groups) {}

  void Process(const Tuple& tuple, int group_index,
               engine::Emitter* out) override {
    (void)out;
    seen_[group_index].push_back(tuple.num);
  }

  const std::vector<double>& seen(int group_index) const {
    return seen_[group_index];
  }

 private:
  std::vector<std::vector<double>> seen_;
};

TEST(BatchedRuntimeTest, MigrationMidBatchBuffersAndDrainsInOrder) {
  engine::Topology topo;
  topo.AddOperator("rec", 4, 1 << 10);
  engine::Cluster cluster(2);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % 2);
  }
  RecordingOperator rec(4);
  engine::LocalEngineOptions opts;
  opts.mode = ExecutionMode::kBatched;
  opts.max_batch_tuples = 1024;  // nothing auto-drains during the test
  opts.window_every_us = 0;
  engine::LocalEngine eng(&topo, &cluster, assign,
                          std::vector<engine::StreamOperator*>{&rec}, opts);

  // A key that lands in group 0.
  uint64_t key = 0;
  while (engine::LocalEngine::RouteKey(key, 4) != 0) ++key;
  const KeyGroupId group = 0;

  auto inject = [&](double seq) {
    Tuple t;
    t.key = key;
    t.num = seq;
    ASSERT_TRUE(eng.Inject(0, t).ok());
  };

  // Tuples 1-5 are staged, then the group starts migrating: the flush must
  // buffer them at the target instead of processing.
  for (int i = 1; i <= 5; ++i) inject(i);
  ASSERT_TRUE(eng.StartMigration(group, 1).ok());
  eng.Flush();
  EXPECT_TRUE(rec.seen(group).empty());

  // More arrive while the state is in flight.
  for (int i = 6; i <= 7; ++i) inject(i);

  // FinishMigration drains the buffer, then the staged tuples, in order.
  auto pause = eng.FinishMigration(group);
  ASSERT_TRUE(pause.ok());
  eng.Flush();
  EXPECT_EQ(eng.assignment().node_of(group), 1);
  EXPECT_EQ(rec.seen(group),
            (std::vector<double>{1, 2, 3, 4, 5, 6, 7}));

  engine::EnginePeriodStats stats = eng.HarvestPeriod();
  EXPECT_EQ(stats.tuples_processed, 7);
  EXPECT_EQ(stats.tuples_buffered, 5);
}

TEST(BatchedRuntimeTest, AutoDrainTriggersAtBatchLimit) {
  engine::Topology topo;
  topo.AddOperator("rec", 2, 1 << 10);
  engine::Cluster cluster(1);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) assign.set_node(g, 0);
  RecordingOperator rec(2);
  engine::LocalEngineOptions opts;
  opts.mode = ExecutionMode::kBatched;
  opts.max_batch_tuples = 8;
  opts.window_every_us = 0;
  engine::LocalEngine eng(&topo, &cluster, assign,
                          std::vector<engine::StreamOperator*>{&rec}, opts);

  for (int i = 0; i < 8; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i);
    t.num = i;
    ASSERT_TRUE(eng.Inject(0, t).ok());
  }
  // The eighth tuple hit the batch limit: everything processed, no Flush.
  EXPECT_EQ(rec.seen(0).size() + rec.seen(1).size(), 8u);
}

}  // namespace
}  // namespace albic
