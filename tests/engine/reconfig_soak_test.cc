// Randomized reconfiguration soak: a seeded fuzz schedule of direct,
// indirect, epoch and lease migrations plus node failures, interleaved
// with sharded ingestion on a multi-worker pipeline, differentially
// checked against a single-node no-reconfiguration oracle. Node kills can
// land while a migration is still open (including a pending or
// just-stamped lease flip), so the schedule exercises the
// cancelled-toward-victim, lost-with-victim and survived-the-kill paths of
// every mode. Every seed must produce bit-identical canonical state and
// windowed output — reconfiguration is supposed to be invisible to the
// computation, whatever the schedule.
//
// Seed count defaults to 24 and can be raised via ALBIC_SOAK_SEEDS; every
// assertion prints the failing seed so a counterexample replays directly.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/checkpoint.h"
#include "engine/local_engine.h"
#include "tests/engine/reconfig_harness.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::MigrationMode;
using engine::NodeId;
using engine::Tuple;
using testing::MakeWikiStream;
using testing::ReconfigOptions;
using testing::ReconfigPipeline;

constexpr int kNodes = 6;
constexpr int kGroupsPerOp = 8;
constexpr int kShards = 3;
constexpr int kTuplesPerSeed = 9000;
constexpr int64_t kWindowUs = 500LL * 1000;
// A chunk never spans a window boundary (so cross-group reordering inside
// one routed chunk cannot change any window's contents) and is capped so a
// window contributes several fuzz action points, not one.
constexpr size_t kMaxChunk = 400;

/// The engine anchors window boundaries at the first tuple it ever sees and
/// fires at anchor + k * window — windows are NOT absolute ts buckets. All
/// window math in the schedule must use the same anchored index.
int64_t WindowIndex(int64_t ts, int64_t anchor) {
  return (ts - anchor) / kWindowUs;
}

int SeedCount() {
  const char* env = std::getenv("ALBIC_SOAK_SEEDS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 24;
}

/// Cuts \p stream into chunks that never cross an (anchored) window
/// boundary.
std::vector<std::pair<size_t, size_t>> CutChunks(
    const std::vector<Tuple>& stream) {
  const int64_t anchor = stream[0].ts;
  std::vector<std::pair<size_t, size_t>> chunks;
  size_t begin = 0;
  for (size_t i = 1; i <= stream.size(); ++i) {
    const bool boundary =
        i == stream.size() ||
        WindowIndex(stream[i].ts, anchor) !=
            WindowIndex(stream[begin].ts, anchor);
    if (boundary || i - begin >= kMaxChunk) {
      chunks.emplace_back(begin, i);
      begin = i;
    }
  }
  return chunks;
}

/// Sharded ingestion of one chunk: bucket by source key group (preserving
/// per-group stream order) and feed each run through the routed entry
/// point, as an ingestion shard would.
void InjectChunkRouted(ReconfigPipeline* p, const std::vector<Tuple>& stream,
                       size_t begin, size_t end) {
  std::vector<std::vector<Tuple>> buckets(kGroupsPerOp);
  for (size_t i = begin; i < end; ++i) {
    buckets[engine::LocalEngine::RouteKey(stream[i].key, kGroupsPerOp)]
        .push_back(stream[i]);
  }
  // Inject the chunk's leading group first: the very first routed run sets
  // the engine's window anchor from its first tuple, which must be
  // stream[0] to match the oracle's bulk ingest.
  const int lead =
      static_cast<int>(engine::LocalEngine::RouteKey(stream[begin].key,
                                                     kGroupsPerOp));
  for (int i = 0; i < kGroupsPerOp; ++i) {
    const int g = (lead + i) % kGroupsPerOp;
    if (buckets[g].empty()) continue;
    ASSERT_TRUE(p->engine
                    ->InjectRouted(0, /*shard=*/g % kShards, g,
                                   buckets[g].data(), buckets[g].size())
                    .ok());
  }
}

/// One full fuzzed run for \p seed, differentially checked at the end.
void RunSoak(uint64_t seed) {
  const std::string label = "seed " + std::to_string(seed);
  const std::vector<Tuple> stream = MakeWikiStream(
      kTuplesPerSeed, /*articles=*/250,
      /*seed=*/static_cast<int>(101 + seed), /*rate=*/2000.0);
  const std::vector<std::pair<size_t, size_t>> chunks = CutChunks(stream);

  // Oracle: one node, one worker, no reconfiguration, plain bulk ingest.
  ReconfigOptions oracle_opts;
  oracle_opts.nodes = 1;
  oracle_opts.groups = kGroupsPerOp;
  oracle_opts.window_every_us = kWindowUs;
  ReconfigPipeline oracle(oracle_opts);
  ASSERT_TRUE(oracle.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  oracle.engine->Flush();

  // Fuzzed run: wide cluster, two workers, checkpointing with delta chains.
  // The registry rides along so the run double-checks the observability
  // blind-spot contract: every counter a run with traffic must move is
  // asserted nonzero below (a zero means publishing silently broke).
  MetricsRegistry registry;
  ReconfigOptions fuzz_opts;
  fuzz_opts.nodes = kNodes;
  fuzz_opts.groups = kGroupsPerOp;
  fuzz_opts.window_every_us = kWindowUs;
  fuzz_opts.num_workers = 2;
  fuzz_opts.metrics = &registry;
  ReconfigPipeline fuzz(fuzz_opts);
  engine::CheckpointCoordinatorOptions copts;
  copts.interval_us = 700LL * 1000;
  copts.max_delta_chain = 4;
  fuzz.EnableCheckpointing(copts);

  Rng rng(seed * 7919 + 17);
  KeyGroupId open_group = -1;  // migration started, Finish pending
  NodeId open_to = -1;         // its target node
  int migrations = 0;
  int kills = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    const uint64_t action = rng.NextU64() % 100;
    const bool kill_action = action >= 35 && action < 45 &&
                             fuzz.cluster.num_active() > 3;
    // A kill deliberately races any still-open migration (the branch below
    // resolves what the failure did to it); every other action first closes
    // the previous chunk's open move.
    if (open_group >= 0 && !kill_action) {
      const auto pause = fuzz.engine->FinishMigration(open_group);
      ASSERT_TRUE(pause.ok()) << label << ": " << pause.status().ToString();
      open_group = -1;
    }
    if (action < 35) {
      // Random migration of a random group in a random mode; half the time
      // it stays open across the next chunk's ingestion (the in-flight
      // window a controller-applied move exposes to live traffic).
      const KeyGroupId g = static_cast<KeyGroupId>(
          rng.NextU64() %
          static_cast<uint64_t>(fuzz.topo.num_key_groups()));
      const NodeId from = fuzz.engine->assignment().node_of(g);
      NodeId to = static_cast<NodeId>(rng.NextU64() %
                                      static_cast<uint64_t>(kNodes));
      while (!fuzz.cluster.is_active(to) || to == from) {
        to = (to + 1) % kNodes;
      }
      const MigrationMode mode =
          static_cast<MigrationMode>(rng.NextU64() % 4);
      ASSERT_TRUE(fuzz.engine->StartMigration(g, to, mode).ok()) << label;
      ++migrations;
      // An open migration must not span a window boundary: a direct or
      // indirect move buffers the group's tuples, and a window firing over
      // that hole would close without them. Epoch and lease moves do not
      // buffer, but the schedule keeps one rule for all four modes. The
      // migration may stay open across this chunk's ingestion only if the
      // chunk cannot fire a window, i.e. it continues the window of the
      // tuple before it.
      const size_t begin = chunks[c].first;
      const bool fires_window =
          begin > 0 &&
          WindowIndex(stream[begin].ts, stream[0].ts) !=
              WindowIndex(stream[begin - 1].ts, stream[0].ts);
      if (!fires_window && rng.NextU64() % 2 == 0) {
        open_group = g;
        open_to = to;
      } else {
        const auto pause = fuzz.engine->FinishMigration(g);
        ASSERT_TRUE(pause.ok()) << label << ": " << pause.status().ToString();
      }
    } else if (kill_action) {
      // Abrupt node failure followed by eager recovery of every lost group
      // onto the lowest-numbered survivor — deterministic for the seed. If
      // a migration is still open the kill races it: a move toward the
      // victim is cancelled by FailNode, a group whose owner died is lost
      // (and recovered below), and a move the failure didn't touch stays
      // finishable. For an open lease move the "owner" depends on whether a
      // wave barrier already stamped the flip during the previous chunk.
      NodeId victim = static_cast<NodeId>(rng.NextU64() %
                                          static_cast<uint64_t>(kNodes));
      while (!fuzz.cluster.is_active(victim)) victim = (victim + 1) % kNodes;
      const bool open_survives =
          open_group >= 0 && open_to != victim &&
          fuzz.engine->assignment().node_of(open_group) != victim;
      ASSERT_TRUE(fuzz.engine->FailNode(victim).ok()) << label;
      ASSERT_TRUE(fuzz.cluster.Fail(victim).ok()) << label;
      ++kills;
      if (open_group >= 0) {
        if (open_survives) {
          // Neither endpoint died: the move must still complete normally
          // (before this chunk ingests, to keep the window rule).
          const auto pause = fuzz.engine->FinishMigration(open_group);
          ASSERT_TRUE(pause.ok())
              << label << ": " << pause.status().ToString();
        } else {
          // Cancelled (target died) or lost (owner died): the move never
          // completes, so it never publishes to engine_migrations_total —
          // keep the published-vs-completed invariant below exact.
          --migrations;
        }
        open_group = -1;
        open_to = -1;
      }
      NodeId target = 0;
      while (!fuzz.cluster.is_active(target)) ++target;
      // Copy: RecoverGroup prunes the engine's lost list as it succeeds.
      const std::vector<KeyGroupId> lost = fuzz.engine->lost_groups();
      for (const KeyGroupId g : lost) {
        const auto rec = fuzz.engine->RecoverGroup(g, target);
        ASSERT_TRUE(rec.ok()) << label << ": " << rec.status().ToString();
      }
      ASSERT_TRUE(fuzz.engine->lost_groups().empty()) << label;
    }
    InjectChunkRouted(&fuzz, stream, chunks[c].first, chunks[c].second);
  }
  if (open_group >= 0) {
    ASSERT_TRUE(fuzz.engine->FinishMigration(open_group).ok()) << label;
  }
  fuzz.engine->Flush();

  // The schedule must have actually reconfigured something.
  EXPECT_GT(migrations + kills, 0) << label;
  testing::ExpectSameOutputs(&fuzz, &oracle, label);
  // And nothing may have been dropped: both pipelines processed the same
  // number of tuple deliveries across all hops.
  const int64_t fuzz_processed = fuzz.engine->HarvestPeriod().tuples_processed;
  const int64_t oracle_processed =
      oracle.engine->HarvestPeriod().tuples_processed;
  EXPECT_EQ(fuzz_processed, oracle_processed) << label;

  // Blind-spot guard: traffic flowed and reconfiguration happened, so the
  // engine's registry counters must all be live. A zero here means a
  // publishing path silently dropped out.
  EXPECT_EQ(registry.Counter("engine_tuples_processed_total")->value(),
            fuzz_processed)
      << label;
  EXPECT_GT(registry.Counter("engine_waves_total")->value(), 0) << label;
  EXPECT_GT(registry.Gauge("engine_mailbox_highwater")->value(), 0) << label;
  EXPECT_GT(registry.Counter("engine_checkpoints_total")->value(), 0)
      << label;
  const int64_t migrations_published =
      registry.Counter("engine_migrations_total", {{"mode", "direct"}})
          ->value() +
      registry.Counter("engine_migrations_total", {{"mode", "indirect"}})
          ->value() +
      registry.Counter("engine_migrations_total", {{"mode", "epoch"}})
          ->value() +
      registry.Counter("engine_migrations_total", {{"mode", "lease"}})
          ->value();
  EXPECT_EQ(migrations_published, migrations) << label;
  if (kills > 0) {
    EXPECT_GT(registry.Counter("engine_groups_recovered_total")->value(), 0)
        << label;
  }
}

TEST(ReconfigSoakTest, RandomScheduleMatchesOracleBitForBit) {
  const int seeds = SeedCount();
  for (int s = 0; s < seeds; ++s) {
    RunSoak(static_cast<uint64_t>(s));
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "soak diverged at seed " << s;
    }
  }
}

}  // namespace
}  // namespace albic
