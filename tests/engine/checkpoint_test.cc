// Checkpoint subsystem: stores (memory + file), replay logs, the
// coordinator's incremental rounds, and the three integrative guarantees —
// (a) checkpoint + replay reconstruction is bit-identical to live state,
// (b) indirect migration produces outputs identical to direct migration,
// (c) recovery after a mid-stream node kill loses zero tuples and matches
// the no-failure run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "balance/milp_rebalancer.h"
#include "core/controller_loop.h"
#include "engine/checkpoint.h"
#include "engine/load_model.h"
#include "engine/local_engine.h"
#include "ops/geohash.h"
#include "ops/store.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::CheckpointCoordinator;
using engine::CheckpointCoordinatorOptions;
using engine::CheckpointInfo;
using engine::CheckpointManifest;
using engine::KeyGroupId;
using engine::MemoryCheckpointStore;
using engine::NodeId;
using engine::ReplayLog;
using engine::Tuple;

constexpr int kNodes = 4;
constexpr int kGroups = 8;
constexpr int64_t kWindowUs = 60LL * 1000 * 1000;

/// The Real Job 1 pipeline over the batched runtime, with optional
/// checkpointing (mirrors tests/integration/wiki_pipeline_test.cc).
struct Pipeline {
  engine::Topology topo;
  engine::Cluster cluster{kNodes};
  ops::GeoHashOperator geohash{kGroups, 256};
  ops::WindowedTopKOperator topk{kGroups, 64};
  ops::WindowedTopKOperator global{kGroups, 64, ops::TopKCountMode::kSumNum};
  MemoryCheckpointStore store;
  std::unique_ptr<CheckpointCoordinator> coordinator;
  std::unique_ptr<engine::LocalEngine> engine;

  explicit Pipeline(engine::ExecutionMode mode = engine::ExecutionMode::kBatched) {
    topo.AddOperator("geohash", kGroups, 1 << 14);
    topo.AddOperator("topk", kGroups, 1 << 14);
    topo.AddOperator("global", kGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kNodes);
    }
    engine::LocalEngineOptions opts;
    opts.window_every_us = kWindowUs;
    opts.mode = mode;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global}, opts);
  }

  void EnableCheckpointing(CheckpointCoordinatorOptions copts = {}) {
    coordinator = std::make_unique<CheckpointCoordinator>(&store, copts);
    ASSERT_TRUE(engine->EnableCheckpointing(coordinator.get()).ok());
  }

  engine::StreamOperator* op(engine::OperatorId id) {
    engine::StreamOperator* ops[] = {&geohash, &topk, &global};
    return ops[id];
  }

  /// Canonical serialized state of a global key group.
  std::string StateOf(KeyGroupId g) {
    return op(topo.group_operator(g))
        ->SerializeGroupState(topo.group_index_in_operator(g));
  }

  /// Edit counts per article in the last closed window, merged over the
  /// global groups.
  std::map<uint64_t, int64_t> GlobalCounts() const {
    std::map<uint64_t, int64_t> out;
    for (int g = 0; g < kGroups; ++g) {
      for (const auto& [article, count] : global.last_window_top(g)) {
        out[article] += count;
      }
    }
    return out;
  }
};

std::vector<Tuple> MakeStream(int tuples, int articles = 300, int seed = 101,
                              double rate = 400.0) {
  workload::WikipediaEditStream edits(articles, seed, rate);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(tuples));
  for (int i = 0; i < tuples; ++i) out.push_back(edits.Next());
  return out;
}

// ---------------------------------------------------------------------------
// ReplayLog
// ---------------------------------------------------------------------------

/// Replays a log into a readable trace: "t<key>" per tuple, "W" per fire.
std::string TraceFrom(const ReplayLog& log, uint64_t from_seq) {
  std::string out;
  log.ReplayFrom(
      from_seq,
      [&](const Tuple& t) {
        out.push_back('t');
        out.append(std::to_string(t.key));
      },
      [&] { out.push_back('W'); });
  return out;
}

TEST(ReplayLogTest, SequencesTruncationAndReplayOrder) {
  ReplayLog log;
  EXPECT_EQ(log.next_seq(), 0u);
  EXPECT_TRUE(log.empty());
  Tuple t;
  t.key = 7;
  log.AppendTuple(t);   // seq 0
  log.AppendWindowFire();  // seq 1
  Tuple run[2];
  run[0].key = 8;
  run[1].key = 9;
  log.AppendRun(run, 2);   // seqs 2, 3
  log.AppendWindowFire();  // seq 4
  EXPECT_EQ(log.next_seq(), 5u);
  EXPECT_EQ(log.base_seq(), 0u);
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.tuple_count(), 3u);
  EXPECT_EQ(log.window_fire_count(), 2u);
  EXPECT_EQ(TraceFrom(log, 0), "t7Wt8t9W");
  EXPECT_EQ(TraceFrom(log, 1), "Wt8t9W");
  EXPECT_EQ(TraceFrom(log, 3), "t9W");

  log.TruncateBefore(2);
  EXPECT_EQ(log.base_seq(), 2u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(TraceFrom(log, 0), "t8t9W");  // clamped to base_seq
  // Truncating to an already-dropped point is a no-op.
  log.TruncateBefore(1);
  EXPECT_EQ(log.base_seq(), 2u);
  // Truncating past the end empties the log but keeps the counter.
  log.TruncateBefore(100);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.next_seq(), 5u);
  EXPECT_EQ(log.base_seq(), 5u);
  EXPECT_EQ(TraceFrom(log, 0), "");
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

TEST(MemoryCheckpointStoreTest, VersionsAndRetention) {
  MemoryCheckpointStore store(/*retain_versions=*/2);
  auto v1 = store.Put(3, /*seq=*/10, "one");
  auto v2 = store.Put(3, /*seq=*/20, "two");
  auto v3 = store.Put(3, /*seq=*/30, "three");
  ASSERT_TRUE(v1.ok() && v2.ok() && v3.ok());
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v3->version, 3u);

  CheckpointInfo info;
  std::string state;
  ASSERT_TRUE(store.Latest(3, &info, &state));
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(info.seq, 30u);
  EXPECT_EQ(state, "three");
  // Version 2 is retained, version 1 was evicted.
  EXPECT_TRUE(store.Get(3, 2, &info, &state));
  EXPECT_EQ(state, "two");
  EXPECT_FALSE(store.Get(3, 1, nullptr, nullptr));
  EXPECT_FALSE(store.Latest(4, nullptr, nullptr));
  EXPECT_EQ(store.puts(), 3);
  EXPECT_EQ(store.stored_bytes(),
            static_cast<int64_t>(std::string("two").size() +
                                 std::string("three").size()));

  CheckpointManifest manifest;
  manifest.epoch = 9;
  manifest.shard_offsets = {100, 200};
  ASSERT_TRUE(store.PutManifest(manifest).ok());
  CheckpointManifest read;
  ASSERT_TRUE(store.LatestManifest(&read));
  EXPECT_EQ(read.epoch, 9u);
  EXPECT_EQ(read.shard_offsets, (std::vector<int64_t>{100, 200}));
}

TEST(MemoryCheckpointStoreTest, DeltaChainsAndChainUnitRetention) {
  MemoryCheckpointStore store(/*retain_versions=*/2);
  // A delta needs a base to chain onto.
  EXPECT_FALSE(store.PutDelta(1, 0, "d").ok());

  ASSERT_TRUE(store.Put(1, /*seq=*/0, "base1").ok());
  ASSERT_TRUE(store.PutDelta(1, /*seq=*/5, "d1").ok());
  ASSERT_TRUE(store.PutDelta(1, /*seq=*/9, "d2").ok());
  EXPECT_EQ(store.delta_puts(), 2);
  EXPECT_EQ(store.ChainDeltaBytes(1), 4u);  // "d1" + "d2"

  // Latest is the raw newest record; LatestChain materializes the chain.
  CheckpointInfo info;
  std::string state;
  ASSERT_TRUE(store.Latest(1, &info, &state));
  EXPECT_TRUE(info.is_delta);
  EXPECT_EQ(state, "d2");
  std::string base;
  std::vector<std::string> deltas;
  ASSERT_TRUE(store.LatestChain(1, &info, &base, &deltas));
  EXPECT_EQ(info.seq, 9u);
  EXPECT_TRUE(info.is_delta);
  EXPECT_EQ(base, "base1");
  EXPECT_EQ(deltas, (std::vector<std::string>{"d1", "d2"}));

  // A fresh base starts a new chain; ChainDeltaBytes resets with it.
  ASSERT_TRUE(store.Put(1, /*seq=*/12, "base2").ok());
  EXPECT_EQ(store.ChainDeltaBytes(1), 0u);
  ASSERT_TRUE(store.PutDelta(1, /*seq=*/14, "d3").ok());

  // Retention counts chains: the third base evicts the whole first chain
  // (base1 AND its deltas — evicting only part would orphan the rest).
  ASSERT_TRUE(store.Put(1, /*seq=*/20, "base3").ok());
  EXPECT_FALSE(store.Get(1, 1, nullptr, nullptr));  // base1 gone
  EXPECT_FALSE(store.Get(1, 2, nullptr, nullptr));  // d1 gone
  EXPECT_FALSE(store.Get(1, 3, nullptr, nullptr));  // d2 gone
  ASSERT_TRUE(store.Get(1, 4, nullptr, &state));    // base2 retained
  EXPECT_EQ(state, "base2");
  ASSERT_TRUE(store.LatestChain(1, &info, &base, &deltas));
  EXPECT_EQ(base, "base3");
  EXPECT_TRUE(deltas.empty());
  EXPECT_FALSE(info.is_delta);
}

TEST(FileCheckpointStoreTest, RoundTripAndReopen) {
  const std::string dir =
      ::testing::TempDir() + "/albic_file_ckpt_store_test";
  std::filesystem::remove_all(dir);
  {
    auto store = engine::FileCheckpointStore::Open(dir, /*retain_versions=*/2);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Put(1, 5, "alpha").ok());
    ASSERT_TRUE((*store)->Put(1, 9, "beta").ok());
    ASSERT_TRUE((*store)->Put(2, 4, "gamma").ok());
    ASSERT_TRUE((*store)->Put(1, 12, "delta").ok());  // evicts "alpha"
    CheckpointManifest manifest;
    manifest.epoch = 3;
    manifest.shard_offsets = {42, 7};
    ASSERT_TRUE((*store)->PutManifest(manifest).ok());
  }
  // Reopen: the on-disk snapshots are re-indexed (restart recovery).
  auto store = engine::FileCheckpointStore::Open(dir, /*retain_versions=*/2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CheckpointInfo info;
  std::string state;
  ASSERT_TRUE((*store)->Latest(1, &info, &state));
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(info.seq, 12u);
  EXPECT_EQ(state, "delta");
  ASSERT_TRUE((*store)->Get(1, 2, &info, &state));
  EXPECT_EQ(state, "beta");
  EXPECT_FALSE((*store)->Get(1, 1, nullptr, nullptr));  // evicted from disk
  ASSERT_TRUE((*store)->Latest(2, &info, &state));
  EXPECT_EQ(state, "gamma");
  CheckpointManifest read;
  ASSERT_TRUE((*store)->LatestManifest(&read));
  EXPECT_EQ(read.epoch, 3u);
  EXPECT_EQ(read.shard_offsets, (std::vector<int64_t>{42, 7}));
  std::filesystem::remove_all(dir);
}

TEST(FileCheckpointStoreTest, DeltaChainSurvivesReopenBitIdentical) {
  // Kill-mid-chain restart: a base + two deltas written through a real
  // operator, the process "dies" (store closed), the directory is reopened
  // and the chain replayed onto a fresh operator — the restored state must
  // be bit-identical to the live one.
  const std::string dir =
      ::testing::TempDir() + "/albic_file_ckpt_delta_chain_test";
  std::filesystem::remove_all(dir);

  ops::StoreSinkOperator live(1);
  engine::StateChangeTracker tracker;
  live.AttachChangeTracker(0, &tracker);
  auto feed = [&](uint64_t key, double num) {
    Tuple t;
    t.key = key;
    t.num = num;
    live.Process(t, 0, nullptr);
  };

  std::string base, d1, d2;
  {
    auto store = engine::FileCheckpointStore::Open(dir, /*retain_versions=*/2);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (uint64_t k = 1; k <= 50; ++k) feed(k, 0.5 * static_cast<double>(k));
    base = live.SerializeGroupState(0);
    ASSERT_TRUE((*store)->Put(7, /*seq=*/50, base).ok());
    tracker.Clear();

    feed(3, 99.0);    // overwrite
    feed(60, 1.25);   // new key
    d1 = live.SerializeGroupDelta(0);
    ASSERT_TRUE((*store)->PutDelta(7, /*seq=*/52, d1).ok());
    tracker.Clear();

    feed(60, 2.5);
    feed(61, -4.0);
    d2 = live.SerializeGroupDelta(0);
    ASSERT_TRUE((*store)->PutDelta(7, /*seq=*/54, d2).ok());
    tracker.Clear();
    // Deltas are far smaller than the table they describe.
    EXPECT_LT(d1.size(), base.size() / 4);
  }

  // Reopen: base and delta records are re-indexed with their kinds intact.
  auto store = engine::FileCheckpointStore::Open(dir, /*retain_versions=*/2);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  CheckpointInfo info;
  std::string got_base;
  std::vector<std::string> deltas;
  ASSERT_TRUE((*store)->LatestChain(7, &info, &got_base, &deltas));
  EXPECT_EQ(info.seq, 54u);
  EXPECT_TRUE(info.is_delta);
  EXPECT_EQ(got_base, base);
  EXPECT_EQ(deltas, (std::vector<std::string>{d1, d2}));
  EXPECT_EQ((*store)->ChainDeltaBytes(7), d1.size() + d2.size());

  ops::StoreSinkOperator recovered(1);
  ASSERT_TRUE(recovered.DeserializeGroupState(0, got_base).ok());
  for (const std::string& d : deltas) {
    ASSERT_TRUE(recovered.ApplyGroupDelta(0, d).ok());
  }
  EXPECT_EQ(recovered.SerializeGroupState(0), live.SerializeGroupState(0));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Coordinator + engine integration
// ---------------------------------------------------------------------------

TEST(CheckpointCoordinatorTest, IncrementalRoundsOnlySnapshotDirtyGroups) {
  Pipeline p;
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 10LL * 1000 * 1000;
  p.EnableCheckpointing(copts);
  // The initial full round snapshots every operator group.
  EXPECT_EQ(p.coordinator->stats().rounds, 1);
  EXPECT_EQ(p.coordinator->stats().snapshots, 3 * kGroups);

  const std::vector<Tuple> stream = MakeStream(30000);
  for (const Tuple& t : stream) ASSERT_TRUE(p.engine->Inject(0, t).ok());
  p.engine->Flush();
  EXPECT_GT(p.coordinator->stats().rounds, 2);
  // Incremental: later rounds write fewer snapshots than rounds * groups
  // would (clean groups are skipped). With this stream all groups see
  // traffic every 10 s, so just check the mechanism produced more than the
  // initial round and the logs were truncated by the last round.
  EXPECT_GT(p.coordinator->stats().snapshots, 3 * kGroups);
  EXPECT_GT(p.store.puts(), 0);
}

TEST(CheckpointCoordinatorTest, LogOverflowForcesARound) {
  Pipeline p;
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 1LL << 60;  // never due by time
  copts.max_log_entries = 64;
  p.EnableCheckpointing(copts);
  const std::vector<Tuple> stream = MakeStream(20000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  EXPECT_GT(p.coordinator->stats().forced_rounds, 0);
  // The soft bound keeps every log from growing unboundedly: after the
  // final drain + forced rounds, no log retains the whole stream.
  for (KeyGroupId g = 0; g < p.topo.num_key_groups(); ++g) {
    EXPECT_LT(p.engine->replay_log(g).size(), 20000u) << "group " << g;
  }
}

TEST(CheckpointCoordinatorTest, ManifestRecordsShardOffsets) {
  Pipeline p;
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 5LL * 1000 * 1000;
  p.EnableCheckpointing(copts);
  const std::vector<Tuple> stream = MakeStream(20000);
  // Feed through the sharded entry point with two shards.
  for (size_t i = 0; i < stream.size(); ++i) {
    const int shard = static_cast<int>(i % 2);
    const int group = engine::LocalEngine::RouteKey(stream[i].key, kGroups);
    ASSERT_TRUE(
        p.engine->InjectRouted(0, shard, group, &stream[i], 1).ok());
  }
  p.engine->Flush();
  ASSERT_TRUE(p.engine->CheckpointDirtyGroups().ok());
  CheckpointManifest manifest;
  ASSERT_TRUE(p.store.LatestManifest(&manifest));
  EXPECT_EQ(manifest.shard_offsets, p.engine->shard_offsets());
  ASSERT_EQ(manifest.shard_offsets.size(), 2u);
  EXPECT_EQ(manifest.shard_offsets[0] + manifest.shard_offsets[1],
            static_cast<int64_t>(stream.size()));
}

// ---------------------------------------------------------------------------
// (a) checkpoint + replay reconstruction is bit-identical to live state
// ---------------------------------------------------------------------------

TEST(CheckpointRecoveryTest, ReconstructionIsBitIdenticalToLiveState) {
  Pipeline p;
  CheckpointCoordinatorOptions copts;
  // 50 s rounds against a 225 s stream: the last round lands at ~200 s, so
  // the final ~25 s of deliveries deterministically form a non-empty
  // suffix that recovery has to replay.
  copts.interval_us = 50LL * 1000 * 1000;
  p.EnableCheckpointing(copts);

  const std::vector<Tuple> stream = MakeStream(90000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();

  for (NodeId node = 0; node < kNodes; ++node) {
    // Live state of every group on this node, then kill it and recover.
    std::map<KeyGroupId, std::string> live;
    for (KeyGroupId g = 0; g < p.topo.num_key_groups(); ++g) {
      if (p.engine->assignment().node_of(g) == node) live[g] = p.StateOf(g);
    }
    ASSERT_FALSE(live.empty());
    ASSERT_TRUE(p.engine->FailNode(node).ok());
    EXPECT_EQ(p.engine->lost_groups().size(), live.size());
    for (const auto& [g, state] : live) {
      // The cleared state differs from the live capture (loss is real).
      EXPECT_NE(p.StateOf(g), state) << "group " << g << " was not cleared";
      auto rec = p.engine->RecoverGroup(g, (node + 1) % kNodes);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      EXPECT_EQ(p.StateOf(g), state)
          << "reconstruction diverged for group " << g;
      EXPECT_EQ(p.engine->assignment().node_of(g), (node + 1) % kNodes);
    }
    EXPECT_TRUE(p.engine->lost_groups().empty());
  }
  // The uncovered tail guaranteed log suffixes, so replay actually ran.
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  EXPECT_GT(stats.tuples_replayed, 0);
  // Recoveries compound: groups recovered onto node n+1 die again when
  // that node is killed next — 6 + 12 + 18 + 24 restores in total.
  EXPECT_EQ(stats.groups_recovered, 60);
}

TEST(CheckpointRecoveryTest, DeltaChainRecoveryIsBitIdentical) {
  // Same zero-loss pin as above, but with delta checkpoints on: recovery
  // now replays base + chained deltas + log suffix, and must still land on
  // exactly the live bytes.
  Pipeline p;
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 15LL * 1000 * 1000;
  copts.max_delta_chain = 4;
  p.EnableCheckpointing(copts);

  const std::vector<Tuple> stream = MakeStream(90000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  // Delta rounds actually happened (the mechanism is live, not bypassed).
  EXPECT_GT(p.store.delta_puts(), 0);
  EXPECT_GT(p.coordinator->stats().delta_snapshots, 0);
  EXPECT_GT(p.coordinator->stats().delta_snapshot_bytes, 0);

  for (NodeId node = 0; node < kNodes; ++node) {
    std::map<KeyGroupId, std::string> live;
    for (KeyGroupId g = 0; g < p.topo.num_key_groups(); ++g) {
      if (p.engine->assignment().node_of(g) == node) live[g] = p.StateOf(g);
    }
    ASSERT_FALSE(live.empty());
    ASSERT_TRUE(p.engine->FailNode(node).ok());
    for (const auto& [g, state] : live) {
      auto rec = p.engine->RecoverGroup(g, (node + 1) % kNodes);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      EXPECT_EQ(p.StateOf(g), state)
          << "delta-chain reconstruction diverged for group " << g;
    }
    EXPECT_TRUE(p.engine->lost_groups().empty());
  }
}

TEST(CheckpointRecoveryTest, ChainZeroNeverWritesDeltas) {
  // max_delta_chain = 0 (the default) is the bit-identical legacy mode:
  // every record is a base, nothing flows through the delta path.
  Pipeline p;
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 15LL * 1000 * 1000;
  p.EnableCheckpointing(copts);
  const std::vector<Tuple> stream = MakeStream(60000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  EXPECT_GT(p.store.puts(), 0);
  EXPECT_EQ(p.store.delta_puts(), 0);
  EXPECT_EQ(p.coordinator->stats().delta_snapshots, 0);
  EXPECT_EQ(p.coordinator->stats().delta_snapshot_bytes, 0);
}

/// Single StoreSink group driven round by round: inject \p keys_per_round
/// distinct keys, flush, take a manual checkpoint round — six times.
/// Returns the store to inspect the base/delta pattern the budget chose.
void RunBudgetedRounds(double max_chain_restore_us, int keys_per_round,
                       MemoryCheckpointStore* store) {
  engine::Topology topo;
  topo.AddOperator("store", 1, 1 << 14);
  engine::Cluster cluster(1);
  engine::Assignment assign(1);
  assign.set_node(0, 0);
  ops::StoreSinkOperator sink(1);
  engine::LocalEngineOptions eopts;
  eopts.mode = engine::ExecutionMode::kBatched;
  eopts.window_every_us = 0;
  engine::LocalEngine engine(&topo, &cluster, assign,
                             std::vector<engine::StreamOperator*>{&sink},
                             eopts);
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 1LL << 60;  // manual rounds only
  copts.max_delta_chain = 16;     // the length bound never binds here
  copts.max_chain_restore_us = max_chain_restore_us;
  CheckpointCoordinator coordinator(store, copts);
  ASSERT_TRUE(engine.EnableCheckpointing(&coordinator).ok());

  for (int round = 0; round < 6; ++round) {
    for (int k = 0; k < keys_per_round; ++k) {
      Tuple t;
      t.key = static_cast<uint64_t>(round * keys_per_round + k);
      t.ts = round * 1000 + k;
      t.num = 1.0 + k;
      ASSERT_TRUE(engine.Inject(0, t).ok());
    }
    engine.Flush();
    ASSERT_TRUE(engine.CheckpointDirtyGroups().ok());
  }

  // Whatever the base/delta pattern, the chain must materialize back to
  // exactly the live table.
  CheckpointInfo info;
  std::string base;
  std::vector<std::string> deltas;
  ASSERT_TRUE(store->LatestChain(0, &info, &base, &deltas));
  ops::StoreSinkOperator restored(1);
  ASSERT_TRUE(restored.DeserializeGroupState(0, base).ok());
  for (const std::string& d : deltas) {
    ASSERT_TRUE(restored.ApplyGroupDelta(0, d).ok());
  }
  EXPECT_EQ(restored.SerializeGroupState(0), sink.SerializeGroupState(0));
}

TEST(CheckpointRecoveryTest, RestoreBudgetKeepsCheapChainsCompactsExpensive) {
  // Delta-aware compaction prices a chain at delta bytes x restore rate
  // (the modeled engine rate here — no restore has run, so no EWMA) and
  // forces a fresh base only when that cost exceeds max_chain_restore_us.
  // Same schedule three times:
  //
  // (1) Long cheap chain, generous budget: six one-key deltas are far
  // under a 10 KiB-equivalent budget, so the whole chain is KEPT even
  // though it is six links long.
  MemoryCheckpointStore cheap_store;
  RunBudgetedRounds(engine::kEnginePauseUsPerByte * 10240.0,
                    /*keys_per_round=*/1, &cheap_store);
  EXPECT_EQ(cheap_store.delta_puts(), 6);
  // Bases (puts counts every record): only the initial full round's.
  EXPECT_EQ(cheap_store.puts() - cheap_store.delta_puts(), 1);

  // (2) Fat deltas, tight budget (64 bytes' worth of restore): the first
  // delta chains (the chain is empty when it is priced), but the chain is
  // then over budget, so the next dirty round compacts into a base —
  // alternating for the rest of the schedule. max_delta_chain (16) never
  // came into play: the BUDGET cut the chain at length one.
  MemoryCheckpointStore exp_store;
  RunBudgetedRounds(engine::kEnginePauseUsPerByte * 64.0,
                    /*keys_per_round=*/40, &exp_store);
  EXPECT_EQ(exp_store.delta_puts(), 3);
  EXPECT_EQ(exp_store.puts() - exp_store.delta_puts(), 1 + 3);

  // (3) Budget off (the 0.0 default): the same fat deltas all chain —
  // bit-identical legacy behavior, bounded only by max_delta_chain.
  MemoryCheckpointStore off_store;
  RunBudgetedRounds(/*max_chain_restore_us=*/0.0,
                    /*keys_per_round=*/40, &off_store);
  EXPECT_EQ(off_store.delta_puts(), 6);
  EXPECT_EQ(off_store.puts() - off_store.delta_puts(), 1);
}

TEST(CheckpointRecoveryTest, IndirectMigrationWithDeltaChainsMatchesDirect) {
  // Indirect migration restores from base + chained deltas + replay; its
  // outputs must still be indistinguishable from a direct state move.
  Pipeline direct;
  Pipeline indirect;
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 15LL * 1000 * 1000;
  copts.max_delta_chain = 4;
  direct.EnableCheckpointing(copts);
  indirect.EnableCheckpointing(copts);

  const std::vector<Tuple> stream = MakeStream(60000);
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(direct.engine->Inject(0, stream[i]).ok());
    ASSERT_TRUE(indirect.engine->Inject(0, stream[i]).ok());
    if (i % 5000 == 4999) {
      const KeyGroupId g = static_cast<KeyGroupId>(
          (i / 5000) % direct.topo.num_key_groups());
      const NodeId to =
          (direct.engine->assignment().node_of(g) + 1) % kNodes;
      ASSERT_TRUE(direct.engine
                      ->StartMigration(g, to, engine::MigrationMode::kDirect)
                      .ok());
      ASSERT_TRUE(direct.engine->FinishMigration(g).ok());
      ASSERT_TRUE(
          indirect.engine
              ->StartMigration(g, to, engine::MigrationMode::kIndirect)
              .ok());
      auto ip = indirect.engine->FinishMigration(g);
      ASSERT_TRUE(ip.ok()) << ip.status().ToString();
    }
  }
  direct.engine->Flush();
  indirect.engine->Flush();

  EXPECT_GT(indirect.store.delta_puts(), 0);
  for (KeyGroupId g = 0; g < direct.topo.num_key_groups(); ++g) {
    EXPECT_EQ(direct.StateOf(g), indirect.StateOf(g)) << "group " << g;
  }
  EXPECT_EQ(direct.GlobalCounts(), indirect.GlobalCounts());
}

TEST(CheckpointRecoveryTest, FailNodeRequiresCheckpointing) {
  Pipeline p;
  EXPECT_FALSE(p.engine->FailNode(0).ok());
  EXPECT_FALSE(p.engine
                   ->StartMigration(0, 1, engine::MigrationMode::kIndirect)
                   .ok());
}

// ---------------------------------------------------------------------------
// (b) indirect migration produces outputs identical to direct migration
// ---------------------------------------------------------------------------

TEST(CheckpointRecoveryTest, IndirectMigrationMatchesDirect) {
  Pipeline direct;
  Pipeline indirect;
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 15LL * 1000 * 1000;
  direct.EnableCheckpointing(copts);
  indirect.EnableCheckpointing(copts);

  const std::vector<Tuple> stream = MakeStream(60000);
  double direct_pause = 0.0;
  double indirect_pause = 0.0;
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(direct.engine->Inject(0, stream[i]).ok());
    ASSERT_TRUE(indirect.engine->Inject(0, stream[i]).ok());
    if (i % 5000 == 4999) {
      const KeyGroupId g = static_cast<KeyGroupId>(
          (i / 5000) % direct.topo.num_key_groups());
      const NodeId to =
          (direct.engine->assignment().node_of(g) + 1) % kNodes;
      ASSERT_TRUE(direct.engine
                      ->StartMigration(g, to, engine::MigrationMode::kDirect)
                      .ok());
      auto dp = direct.engine->FinishMigration(g);
      ASSERT_TRUE(dp.ok());
      direct_pause += *dp;
      ASSERT_TRUE(
          indirect.engine
              ->StartMigration(g, to, engine::MigrationMode::kIndirect)
              .ok());
      auto ip = indirect.engine->FinishMigration(g);
      ASSERT_TRUE(ip.ok()) << ip.status().ToString();
      indirect_pause += *ip;
    }
  }
  direct.engine->Flush();
  indirect.engine->Flush();

  // Identical outputs: every group's canonical state and the merged global
  // top-k answer agree between the two migration modes.
  for (KeyGroupId g = 0; g < direct.topo.num_key_groups(); ++g) {
    EXPECT_EQ(direct.StateOf(g), indirect.StateOf(g)) << "group " << g;
    EXPECT_EQ(direct.engine->assignment().node_of(g),
              indirect.engine->assignment().node_of(g));
  }
  EXPECT_EQ(direct.GlobalCounts(), indirect.GlobalCounts());

  // The indirect runs actually exercised checkpoint + replay.
  engine::EnginePeriodStats istats = indirect.engine->HarvestPeriod();
  EXPECT_GT(istats.tuples_replayed, 0);
  engine::EnginePeriodStats dstats = direct.engine->HarvestPeriod();
  EXPECT_EQ(dstats.tuples_replayed, 0);
  EXPECT_GT(direct_pause, 0.0);
  EXPECT_GT(indirect_pause, 0.0);
  // The engine's accounted indirect pause agrees with the planner-side
  // cost term over the replayed suffix (same shared rate constant).
  const double predicted_us =
      1e6 * engine::IndirectMigrationPauseSeconds(
                static_cast<size_t>(istats.tuples_replayed) * sizeof(Tuple),
                engine::MigrationCostModel{});
  EXPECT_NEAR(indirect_pause, predicted_us, 1e-6 * predicted_us + 1e-9);
}

// ---------------------------------------------------------------------------
// (c) KillNode mid-stream: zero loss, outputs match the no-failure run
// ---------------------------------------------------------------------------

/// Controller-driven run of the wiki pipeline; optionally kills a node
/// mid-stream. Returns (final global counts, per-group states, history).
struct ControlledRun {
  std::map<uint64_t, int64_t> counts;
  std::vector<std::string> states;
  std::vector<core::ControllerRound> history;
  int64_t ingested = 0;
};

ControlledRun RunControlled(const std::vector<Tuple>& stream, bool kill,
                            engine::ExecutionMode mode,
                            int64_t period_us = kWindowUs) {
  Pipeline p(mode);
  CheckpointCoordinatorOptions copts;
  copts.interval_us = 20LL * 1000 * 1000;
  p.EnableCheckpointing(copts);

  balance::MilpRebalancerOptions mopts;
  mopts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 10;
  balance::MilpRebalancer milp(mopts);
  core::AdaptationOptions aopts;
  aopts.constraints.max_migrations = 4;
  core::AdaptationFramework framework(&milp, /*policy=*/nullptr, aopts);
  engine::LoadModel load_model{engine::CostModel{}};

  core::ControllerLoopOptions lopts;
  lopts.period_every_us = period_us;
  lopts.node_capacity_work_units = 1000.0;
  lopts.use_indirect_migration = true;
  core::ControllerLoop controller(p.engine.get(), &framework, &load_model,
                                  &p.topo, &p.cluster, lopts);

  const size_t kill_at = stream.size() / 2;
  const size_t chunk = 1000;
  for (size_t i = 0; i < stream.size(); i += chunk) {
    const size_t n = std::min(chunk, stream.size() - i);
    EXPECT_TRUE(controller.IngestBatch(0, stream.data() + i, n).ok());
    if (kill && i <= kill_at && kill_at < i + chunk) {
      EXPECT_TRUE(controller.KillNode(1).ok());
      // Recovery is eager: KillNode itself ran the round that restored
      // every lost group — nothing is left for a later boundary round.
      EXPECT_TRUE(p.engine->lost_groups().empty());
    }
  }
  auto last = controller.RunRoundNow();
  EXPECT_TRUE(last.ok());

  ControlledRun out;
  out.counts = p.GlobalCounts();
  for (KeyGroupId g = 0; g < p.topo.num_key_groups(); ++g) {
    out.states.push_back(p.StateOf(g));
  }
  out.history = controller.history();
  for (const core::ControllerRound& r : out.history) {
    out.ingested += r.tuples_ingested;
  }
  return out;
}

TEST(CheckpointRecoveryTest, KillNodeMidStreamLosesNothing) {
  const std::vector<Tuple> stream =
      MakeStream(120000, /*articles=*/300, /*seed=*/17, /*rate=*/500.0);
  const ControlledRun baseline =
      RunControlled(stream, /*kill=*/false, engine::ExecutionMode::kBatched);
  const ControlledRun failed =
      RunControlled(stream, /*kill=*/true, engine::ExecutionMode::kBatched);

  // Zero tuples lost: the failure run offered and processed the whole
  // stream, and every operator group ends in exactly the state of the
  // no-failure run — including the last closed window's top-k answer.
  EXPECT_EQ(baseline.ingested, static_cast<int64_t>(stream.size()));
  EXPECT_EQ(failed.ingested, static_cast<int64_t>(stream.size()));
  ASSERT_FALSE(baseline.counts.empty());
  EXPECT_EQ(baseline.counts, failed.counts);
  ASSERT_EQ(baseline.states.size(), failed.states.size());
  for (size_t g = 0; g < baseline.states.size(); ++g) {
    EXPECT_EQ(baseline.states[g], failed.states[g]) << "group " << g;
  }

  // The failure was detected and recovered by a control round.
  int recovered = 0;
  int failed_nodes = 0;
  double recovery_wall_us = 0.0;
  for (const core::ControllerRound& r : failed.history) {
    recovered += r.groups_recovered;
    failed_nodes += r.nodes_failed;
    recovery_wall_us += r.recovery_wall_us;
  }
  EXPECT_EQ(failed_nodes, 1);
  EXPECT_GT(recovered, 0);
  EXPECT_GT(recovery_wall_us, 0.0);
  for (const core::ControllerRound& r : baseline.history) {
    EXPECT_EQ(r.groups_recovered, 0);
  }
}

TEST(CheckpointRecoveryTest, EagerRecoveryAllowsWindowsDuringFormerOutage) {
  // Statistics period of 13 s against a 60 s window cadence: the period
  // does NOT divide the window cadence, so under boundary-paced recovery a
  // window could have fired while groups were lost (KillNode used to
  // reject this configuration outright). Eager recovery runs the recovery
  // round inside KillNode, so windows that fire after the kill see fully
  // restored state — the run must match the no-failure run exactly.
  const std::vector<Tuple> stream =
      MakeStream(120000, /*articles=*/300, /*seed=*/23, /*rate=*/500.0);
  constexpr int64_t kOddPeriodUs = 13LL * 1000 * 1000;
  static_assert(kWindowUs % kOddPeriodUs != 0,
                "the period must not divide the window cadence");
  const ControlledRun baseline = RunControlled(
      stream, /*kill=*/false, engine::ExecutionMode::kBatched, kOddPeriodUs);
  const ControlledRun failed = RunControlled(
      stream, /*kill=*/true, engine::ExecutionMode::kBatched, kOddPeriodUs);

  EXPECT_EQ(failed.ingested, static_cast<int64_t>(stream.size()));
  ASSERT_FALSE(baseline.counts.empty());
  EXPECT_EQ(baseline.counts, failed.counts);
  ASSERT_EQ(baseline.states.size(), failed.states.size());
  for (size_t g = 0; g < baseline.states.size(); ++g) {
    EXPECT_EQ(baseline.states[g], failed.states[g]) << "group " << g;
  }
  // The kill was recovered in the round KillNode ran, not a later one:
  // exactly one round reports both the failure and the restorations.
  int eager_rounds = 0;
  for (const core::ControllerRound& r : failed.history) {
    if (r.nodes_failed > 0) {
      ++eager_rounds;
      EXPECT_GT(r.groups_recovered, 0);
      EXPECT_GT(r.recovery_wall_us, 0.0);
    } else {
      EXPECT_EQ(r.groups_recovered, 0);
    }
  }
  EXPECT_EQ(eager_rounds, 1);
}

TEST(CheckpointRecoveryTest, KillNodeRequiresControllerCheckpointing) {
  Pipeline p;  // checkpointing not enabled
  balance::MilpRebalancerOptions mopts;
  mopts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  balance::MilpRebalancer milp(mopts);
  core::AdaptationFramework framework(&milp, nullptr, {});
  engine::LoadModel load_model{engine::CostModel{}};
  core::ControllerLoop controller(p.engine.get(), &framework, &load_model,
                                  &p.topo, &p.cluster, {});
  EXPECT_FALSE(controller.KillNode(1).ok());
  // The rejected kill left the cluster untouched.
  EXPECT_TRUE(p.cluster.is_active(1));
}

}  // namespace
}  // namespace albic
