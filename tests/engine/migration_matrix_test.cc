// Migration-mode equivalence matrix: one parameterized suite asserting
// that direct, indirect, epoch and lease migrations produce identical
// final outputs (canonical state, windowed results, tuple counts — and all
// of them identical to a no-migration baseline) across state sizes (empty
// group, single key, large FlatMap64 mid-incremental-rehash) and edge
// timings (migration started mid-window with in-flight traffic,
// back-to-back migrations of the same group, target equal to source).
// Plus the mode-request contracts: kEpoch without checkpointing falls back
// to direct, kLease without checkpointing still flips (the arena lease
// needs no checkpoint subsystem), kIndirect without checkpointing is
// rejected, a group already mid-migration rejects a second StartMigration,
// and a lease flip racing a node kill loses no tuples on either side of
// the stamp.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/checkpoint.h"
#include "engine/local_engine.h"
#include "ops/store.h"
#include "tests/engine/reconfig_harness.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::MigrationMode;
using engine::NodeId;
using engine::Tuple;
using testing::MakeWikiStream;
using testing::ReconfigOptions;
using testing::ReconfigPipeline;

// ---------------------------------------------------------------------------
// State-size axis: a null fan-out source feeding a StoreSink, so the
// migrated group's state is exactly the keys the scenario routes to it.
// ---------------------------------------------------------------------------

constexpr int kStoreGroups = 4;
constexpr int kStoreNodes = 3;

struct StoreScenario {
  const char* name;
  int distinct_keys;        ///< Keys routed into the migrated group.
  bool incremental_rehash;  ///< Large-state case: migrate mid-rehash.
};

struct StorePipeline {
  engine::Topology topo;
  engine::Cluster cluster{kStoreNodes};
  ops::StoreSinkOperator sink{kStoreGroups};
  engine::MemoryCheckpointStore cstore;
  std::unique_ptr<engine::CheckpointCoordinator> coordinator;
  std::unique_ptr<engine::LocalEngine> engine;

  StorePipeline() {
    topo.AddOperator("src", 1);
    topo.AddOperator("store", kStoreGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kStoreNodes);
    }
    engine::LocalEngineOptions opts;
    opts.mode = engine::ExecutionMode::kBatched;
    opts.window_every_us = 0;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{nullptr, &sink}, opts);
    engine::CheckpointCoordinatorOptions copts;
    copts.interval_us = 1LL << 60;  // paced manually by the scenario
    copts.max_delta_chain = 3;
    coordinator =
        std::make_unique<engine::CheckpointCoordinator>(&cstore, copts);
    EXPECT_TRUE(engine->EnableCheckpointing(coordinator.get()).ok());
  }

  std::vector<std::string> SinkStates() const {
    std::vector<std::string> out;
    for (int g = 0; g < kStoreGroups; ++g) {
      out.push_back(sink.SerializeGroupState(g));
    }
    return out;
  }
};

/// Keys of the store operator's group \p group, enough to fill the
/// scenario's distinct-key budget; values make every upsert visible.
std::vector<Tuple> KeysFor(int group, int distinct) {
  std::vector<Tuple> out;
  int64_t ts = 0;
  for (uint64_t k = 0; out.size() < static_cast<size_t>(distinct); ++k) {
    if (engine::LocalEngine::RouteKey(k, kStoreGroups) != group) continue;
    Tuple t;
    t.key = k;
    t.num = static_cast<double>(k % 97) + 0.5;
    t.ts = ts += 1000;
    out.push_back(t);
  }
  return out;
}

struct StoreRunResult {
  std::vector<std::string> states;
  int64_t processed = 0;
  int64_t buffered = 0;
};

/// One run: half the keys, checkpoint, migrate (or not), the other half
/// mid-migration when the scenario keeps the move open, then finish.
StoreRunResult RunStoreScenario(const StoreScenario& scenario,
                                bool migrate, MigrationMode mode) {
  StorePipeline p;
  if (scenario.incremental_rehash) p.sink.SetIncrementalRehash(true);
  const KeyGroupId group = p.topo.first_group(1);  // store group 0
  const std::vector<Tuple> keys = KeysFor(0, scenario.distinct_keys);
  const size_t half = keys.size() / 2;
  if (half > 0) {
    EXPECT_TRUE(p.engine->InjectBatch(0, keys.data(), half).ok());
    p.engine->Flush();
  }
  EXPECT_TRUE(p.coordinator->CheckpointNow(p.engine.get()).ok());
  if (migrate) {
    const NodeId to = (p.engine->assignment().node_of(group) + 1) %
                      kStoreNodes;
    EXPECT_TRUE(p.engine->StartMigration(group, to, mode).ok());
    if (keys.size() > half) {
      // In-flight traffic between Start and Finish: buffered for direct
      // and indirect, processed live for epoch — same final state either
      // way.
      EXPECT_TRUE(
          p.engine->InjectBatch(0, keys.data() + half, keys.size() - half)
              .ok());
      p.engine->Flush();
    }
    const auto pause = p.engine->FinishMigration(group);
    EXPECT_TRUE(pause.ok()) << pause.status().ToString();
    EXPECT_EQ(p.engine->assignment().node_of(group), to);
  } else if (keys.size() > half) {
    EXPECT_TRUE(
        p.engine->InjectBatch(0, keys.data() + half, keys.size() - half)
            .ok());
  }
  p.engine->Flush();
  StoreRunResult out;
  out.states = p.SinkStates();
  const engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  out.processed = stats.tuples_processed;
  out.buffered = stats.tuples_buffered;
  return out;
}

class MigrationMatrixTest : public ::testing::TestWithParam<StoreScenario> {};

TEST_P(MigrationMatrixTest, AllModesMatchTheUnmigratedBaseline) {
  const StoreScenario& scenario = GetParam();
  const StoreRunResult baseline =
      RunStoreScenario(scenario, /*migrate=*/false, MigrationMode::kDirect);
  for (const MigrationMode mode :
       {MigrationMode::kDirect, MigrationMode::kIndirect,
        MigrationMode::kEpoch, MigrationMode::kLease}) {
    const StoreRunResult run = RunStoreScenario(scenario, /*migrate=*/true,
                                                mode);
    EXPECT_EQ(run.states, baseline.states)
        << scenario.name << ": mode " << static_cast<int>(mode)
        << " diverged from the unmigrated baseline";
    EXPECT_EQ(run.processed, baseline.processed)
        << scenario.name << ": mode " << static_cast<int>(mode)
        << " lost or duplicated tuples";
    if (!engine::MigrationBuffers(mode)) {
      EXPECT_EQ(run.buffered, 0)
          << scenario.name << ": an epoch/lease migration buffered tuples";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StateSizes, MigrationMatrixTest,
    ::testing::Values(StoreScenario{"empty_group", 0, false},
                      StoreScenario{"single_key", 1, false},
                      StoreScenario{"large_mid_rehash", 3000, true}),
    [](const ::testing::TestParamInfo<StoreScenario>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Edge-timing axis, on the windowed wiki pipeline.
// ---------------------------------------------------------------------------

struct WikiRunResult {
  std::vector<std::string> states;
  std::map<uint64_t, int64_t> counts;
  int64_t processed = 0;
};

enum class Timing { kNone, kMidWindow, kBackToBack, kSelfTarget };

WikiRunResult RunWikiScenario(Timing timing, MigrationMode mode) {
  ReconfigOptions opts;  // 4 nodes, 8 groups per op, 500 ms windows
  ReconfigPipeline p(opts);
  engine::CheckpointCoordinatorOptions copts;
  copts.interval_us = 700LL * 1000;
  copts.max_delta_chain = 4;
  p.EnableCheckpointing(copts);
  const std::vector<Tuple> stream = MakeWikiStream(4000);
  // Split inside a window, and find where that window ends: the in-flight
  // slice [split, window_end) shares the open migration's window, so no
  // window can close over tuples a direct or indirect move has buffered.
  // The engine anchors window boundaries at the first tuple's ts, so the
  // window index of a tuple is (ts - anchor) / every, not an absolute
  // bucket.
  const size_t split = stream.size() / 2;
  const int64_t anchor = stream[0].ts;
  size_t window_end = split;
  while (window_end < stream.size() &&
         (stream[window_end].ts - anchor) / opts.window_every_us ==
             (stream[split].ts - anchor) / opts.window_every_us) {
    ++window_end;
  }
  EXPECT_TRUE(p.engine->InjectBatch(0, stream.data(), split).ok());
  p.engine->Flush();
  const KeyGroupId group = p.topo.first_group(1);  // first top-k group
  const NodeId from = p.engine->assignment().node_of(group);
  switch (timing) {
    case Timing::kNone:
      break;
    case Timing::kMidWindow: {
      // Started mid-window, with the rest of the window's traffic landing
      // between Start and Finish.
      EXPECT_TRUE(
          p.engine->StartMigration(group, (from + 1) % opts.nodes, mode)
              .ok());
      break;
    }
    case Timing::kBackToBack: {
      // Two complete migrations of the same group, one right after the
      // other (the second starts from the first one's target).
      EXPECT_TRUE(
          p.engine->MigrateGroup(group, (from + 1) % opts.nodes, mode).ok());
      EXPECT_TRUE(
          p.engine->MigrateGroup(group, (from + 2) % opts.nodes, mode).ok());
      break;
    }
    case Timing::kSelfTarget: {
      // Target equal to source is rejected for every mode, and the
      // rejection must leave the pipeline untouched.
      const Status s = p.engine->StartMigration(group, from, mode);
      EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
      break;
    }
  }
  if (timing == Timing::kMidWindow) {
    // The rest of the split window lands between Start and Finish.
    EXPECT_TRUE(
        p.engine->InjectBatch(0, stream.data() + split, window_end - split)
            .ok());
    p.engine->Flush();
    const auto pause = p.engine->FinishMigration(group);
    EXPECT_TRUE(pause.ok()) << pause.status().ToString();
    EXPECT_TRUE(p.engine
                    ->InjectBatch(0, stream.data() + window_end,
                                  stream.size() - window_end)
                    .ok());
  } else {
    EXPECT_TRUE(
        p.engine->InjectBatch(0, stream.data() + split, stream.size() - split)
            .ok());
  }
  p.engine->Flush();
  WikiRunResult out;
  out.states = p.AllStates();
  out.counts = p.GlobalCounts();
  out.processed = p.engine->HarvestPeriod().tuples_processed;
  return out;
}

class MigrationTimingTest : public ::testing::TestWithParam<Timing> {};

TEST_P(MigrationTimingTest, AllModesMatchTheUnmigratedBaseline) {
  const Timing timing = GetParam();
  const WikiRunResult baseline =
      RunWikiScenario(Timing::kNone, MigrationMode::kDirect);
  for (const MigrationMode mode :
       {MigrationMode::kDirect, MigrationMode::kIndirect,
        MigrationMode::kEpoch, MigrationMode::kLease}) {
    const WikiRunResult run = RunWikiScenario(timing, mode);
    EXPECT_EQ(run.states, baseline.states)
        << "mode " << static_cast<int>(mode) << " diverged";
    EXPECT_EQ(run.counts, baseline.counts)
        << "mode " << static_cast<int>(mode) << " windowed output diverged";
    EXPECT_EQ(run.processed, baseline.processed)
        << "mode " << static_cast<int>(mode) << " lost or duplicated tuples";
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeTimings, MigrationTimingTest,
    ::testing::Values(Timing::kMidWindow, Timing::kBackToBack,
                      Timing::kSelfTarget),
    [](const ::testing::TestParamInfo<Timing>& info) {
      switch (info.param) {
        case Timing::kMidWindow:
          return "mid_window";
        case Timing::kBackToBack:
          return "back_to_back";
        case Timing::kSelfTarget:
          return "target_equals_source";
        default:
          return "none";
      }
    });

// ---------------------------------------------------------------------------
// Mode-request contracts: fallback and rejection.
// ---------------------------------------------------------------------------

TEST(MigrationModeContractTest, EpochWithoutCheckpointingFallsBackToDirect) {
  // No EnableCheckpointing: a kEpoch request degrades to kDirect — the
  // move still happens, with direct-mode semantics (tuples buffer, the
  // pause is O(state)) rather than an error. kIndirect, by contrast, is
  // an explicit mechanism request and is rejected outright.
  engine::Topology topo;
  topo.AddOperator("src", 1);
  topo.AddOperator("store", kStoreGroups, 1 << 14);
  ASSERT_TRUE(
      topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
          .ok());
  engine::Cluster cluster(kStoreNodes);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % kStoreNodes);
  }
  ops::StoreSinkOperator sink(kStoreGroups);
  engine::LocalEngineOptions opts;
  opts.mode = engine::ExecutionMode::kBatched;
  opts.window_every_us = 0;
  engine::LocalEngine engine(
      &topo, &cluster, assign,
      std::vector<engine::StreamOperator*>{nullptr, &sink}, opts);

  const std::vector<Tuple> keys = KeysFor(0, 33);
  ASSERT_TRUE(engine.InjectBatch(0, keys.data(), 32).ok());
  engine.Flush();
  const KeyGroupId group = topo.first_group(1);
  const NodeId to = (engine.assignment().node_of(group) + 1) % kStoreNodes;

  // kIndirect without checkpointing: rejected.
  const Status indirect = engine.StartMigration(group, to,
                                                MigrationMode::kIndirect);
  EXPECT_EQ(indirect.code(), StatusCode::kInvalidArgument)
      << indirect.ToString();

  // kEpoch without checkpointing: accepted, with direct semantics — the
  // in-flight tuple buffers (an epoch move would process it live) and the
  // pause is the O(state) round-trip, not zero.
  ASSERT_TRUE(
      engine.StartMigration(group, to, MigrationMode::kEpoch).ok());
  ASSERT_TRUE(engine.InjectBatch(0, &keys[32], 1).ok());
  engine.Flush();
  EXPECT_EQ(sink.ValueFor(0, keys[32].key), 0.0);  // buffered, not applied
  const auto pause = engine.FinishMigration(group);
  ASSERT_TRUE(pause.ok()) << pause.status().ToString();
  EXPECT_GT(*pause, 0.0) << "fallback must pay the direct O(state) pause";
  EXPECT_EQ(sink.ValueFor(0, keys[32].key), keys[32].num);  // drained
  EXPECT_EQ(engine.assignment().node_of(group), to);
  const engine::EnginePeriodStats stats = engine.HarvestPeriod();
  EXPECT_EQ(stats.tuples_buffered, 1);
}

TEST(MigrationModeContractTest, LeaseWithoutCheckpointingStillFlips) {
  // Unlike kEpoch (degrades to direct) and kIndirect (rejected), a kLease
  // request needs no checkpoint subsystem at all: the state slot never
  // moves, so there is nothing to transfer and nothing to replay. The
  // in-flight tuple processes LIVE at whichever owner the routing names,
  // and the accounted pause is exactly zero.
  engine::Topology topo;
  topo.AddOperator("src", 1);
  topo.AddOperator("store", kStoreGroups, 1 << 14);
  ASSERT_TRUE(
      topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
          .ok());
  engine::Cluster cluster(kStoreNodes);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % kStoreNodes);
  }
  ops::StoreSinkOperator sink(kStoreGroups);
  engine::LocalEngineOptions opts;
  opts.mode = engine::ExecutionMode::kBatched;
  opts.window_every_us = 0;
  engine::LocalEngine engine(
      &topo, &cluster, assign,
      std::vector<engine::StreamOperator*>{nullptr, &sink}, opts);

  const std::vector<Tuple> keys = KeysFor(0, 33);
  ASSERT_TRUE(engine.InjectBatch(0, keys.data(), 32).ok());
  engine.Flush();
  const KeyGroupId group = topo.first_group(1);
  const NodeId to = (engine.assignment().node_of(group) + 1) % kStoreNodes;

  ASSERT_TRUE(engine.StartMigration(group, to, MigrationMode::kLease).ok());
  ASSERT_TRUE(engine.InjectBatch(0, &keys[32], 1).ok());
  engine.Flush();
  EXPECT_EQ(sink.ValueFor(0, keys[32].key), keys[32].num)
      << "a lease move must process in-flight tuples live, not buffer them";
  const auto pause = engine.FinishMigration(group);
  ASSERT_TRUE(pause.ok()) << pause.status().ToString();
  EXPECT_EQ(*pause, 0.0) << "a lease flip moves nothing, pauses for nothing";
  EXPECT_EQ(engine.assignment().node_of(group), to);
  const engine::EnginePeriodStats stats = engine.HarvestPeriod();
  EXPECT_EQ(stats.tuples_buffered, 0);
  EXPECT_EQ(stats.tuples_processed, 33);
}

TEST(MigrationModeContractTest, LeaseTowardDyingNodeIsCancelledLossFree) {
  // A lease flip racing a kill of its TARGET: the stamp never happened, so
  // the lease table still names the source — FailNode cancels the pending
  // move and the group keeps processing where it is, losing nothing.
  const StoreScenario scenario{"single_owner", 48, false};
  const StoreRunResult baseline =
      RunStoreScenario(scenario, /*migrate=*/false, MigrationMode::kDirect);

  StorePipeline p;
  const KeyGroupId group = p.topo.first_group(1);  // store group 0
  const std::vector<Tuple> keys = KeysFor(0, scenario.distinct_keys);
  const size_t half = keys.size() / 2;
  ASSERT_TRUE(p.engine->InjectBatch(0, keys.data(), half).ok());
  p.engine->Flush();
  ASSERT_TRUE(p.coordinator->CheckpointNow(p.engine.get()).ok());

  const NodeId from = p.engine->assignment().node_of(group);
  const NodeId to = (from + 1) % kStoreNodes;
  ASSERT_TRUE(p.engine->StartMigration(group, to, MigrationMode::kLease).ok());
  // No wave barrier between Start and the kill: the flip is still pending.
  ASSERT_TRUE(p.engine->FailNode(to).ok());
  EXPECT_EQ(p.engine->assignment().node_of(group), from)
      << "a cancelled lease flip must leave ownership untouched";
  ASSERT_TRUE(
      p.engine->InjectBatch(0, keys.data() + half, keys.size() - half).ok());
  p.engine->Flush();
  // Groups that died WITH the node recover normally (checkpoint + replay);
  // the leased group is not among them.
  for (const KeyGroupId lost : p.engine->lost_groups()) {
    EXPECT_NE(lost, group);
    ASSERT_TRUE(p.engine->RecoverGroup(lost, from).ok());
  }
  p.engine->Flush();
  EXPECT_EQ(p.SinkStates(), baseline.states);
  EXPECT_EQ(p.engine->HarvestPeriod().tuples_processed, baseline.processed);
}

TEST(MigrationModeContractTest, LeasedGroupDyingWithNodeRecoversLossFree) {
  // A lease flip whose stamp ALREADY happened, followed by a kill of the
  // new owner: the lease dies with the node, and recovery goes through
  // checkpoint + replay like any other lost group — zero tuple loss, and
  // never another flip of a dead lease.
  const StoreScenario scenario{"single_owner", 48, false};
  const StoreRunResult baseline =
      RunStoreScenario(scenario, /*migrate=*/false, MigrationMode::kDirect);

  StorePipeline p;
  const KeyGroupId group = p.topo.first_group(1);
  const std::vector<Tuple> keys = KeysFor(0, scenario.distinct_keys);
  const size_t half = keys.size() / 2;
  ASSERT_TRUE(p.engine->InjectBatch(0, keys.data(), half).ok());
  p.engine->Flush();
  ASSERT_TRUE(p.coordinator->CheckpointNow(p.engine.get()).ok());

  const NodeId from = p.engine->assignment().node_of(group);
  const NodeId to = (from + 1) % kStoreNodes;
  ASSERT_TRUE(p.engine->MigrateGroup(group, to, MigrationMode::kLease).ok());
  ASSERT_EQ(p.engine->assignment().node_of(group), to);

  ASSERT_TRUE(p.engine->FailNode(to).ok());
  // Input offered during the outage buffers and drains at recovery.
  ASSERT_TRUE(
      p.engine->InjectBatch(0, keys.data() + half, keys.size() - half).ok());
  p.engine->Flush();
  for (const KeyGroupId lost : p.engine->lost_groups()) {
    ASSERT_TRUE(p.engine->RecoverGroup(lost, from).ok());
  }
  p.engine->Flush();
  EXPECT_EQ(p.SinkStates(), baseline.states);
  EXPECT_EQ(p.engine->HarvestPeriod().tuples_processed, baseline.processed);
}

TEST(MigrationModeContractTest, SecondStartOnMigratingGroupIsRejected) {
  StorePipeline p;
  const KeyGroupId group = p.topo.first_group(1);
  const NodeId from = p.engine->assignment().node_of(group);
  for (const MigrationMode mode :
       {MigrationMode::kDirect, MigrationMode::kIndirect,
        MigrationMode::kEpoch, MigrationMode::kLease}) {
    ASSERT_TRUE(
        p.engine->StartMigration(group, (from + 1) % kStoreNodes, mode).ok());
    // Every re-Start on the open migration is rejected, whatever mode the
    // second request asks for.
    for (const MigrationMode second :
         {MigrationMode::kDirect, MigrationMode::kIndirect,
          MigrationMode::kEpoch, MigrationMode::kLease}) {
      const Status s =
          p.engine->StartMigration(group, (from + 2) % kStoreNodes, second);
      EXPECT_EQ(s.code(), StatusCode::kAlreadyExists) << s.ToString();
    }
    ASSERT_TRUE(p.engine->FinishMigration(group).ok());
    // Round-trip the group home so every iteration starts identically.
    ASSERT_TRUE(
        p.engine->MigrateGroup(group, from, MigrationMode::kDirect).ok());
  }
}

}  // namespace
}  // namespace albic
