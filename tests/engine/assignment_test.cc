#include "engine/assignment.h"

#include <gtest/gtest.h>

namespace albic::engine {
namespace {

TEST(AssignmentTest, DefaultsToInvalid) {
  Assignment a(3);
  EXPECT_EQ(a.num_groups(), 3);
  EXPECT_EQ(a.node_of(0), kInvalidNode);
}

TEST(AssignmentTest, SetAndQuery) {
  Assignment a(5);
  a.set_node(0, 1);
  a.set_node(1, 1);
  a.set_node(2, 0);
  EXPECT_EQ(a.groups_on(1), (std::vector<KeyGroupId>{0, 1}));
  EXPECT_EQ(a.count_on(1), 2);
  EXPECT_EQ(a.count_on(0), 1);
  EXPECT_EQ(a.count_on(7), 0);
}

TEST(AssignmentTest, DiffProducesExactMigrations) {
  Assignment from(4), to(4);
  for (KeyGroupId g = 0; g < 4; ++g) {
    from.set_node(g, 0);
    to.set_node(g, g % 2 == 0 ? 0 : 1);
  }
  std::vector<Migration> migs = from.DiffTo(to);
  ASSERT_EQ(migs.size(), 2u);
  EXPECT_EQ(migs[0].group, 1);
  EXPECT_EQ(migs[0].from, 0);
  EXPECT_EQ(migs[0].to, 1);
  EXPECT_EQ(migs[1].group, 3);
}

TEST(AssignmentTest, DiffOfIdenticalIsEmpty) {
  Assignment a(3);
  a.set_node(0, 2);
  EXPECT_TRUE(a.DiffTo(a).empty());
  Assignment b = a;
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.DiffTo(b).empty());
}

}  // namespace
}  // namespace albic::engine
