// Event tracer: span nesting and the Chrome trace-event document, worker
// threads publishing into per-thread buffers during engine waves, and the
// core cost contract — engine outputs are bit-identical with tracing (and
// metrics publishing) on or off.
//
// The tracer is process-wide (Tracer::Global()), so every test clears it
// on entry and disables it on exit.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/metrics_registry.h"
#include "engine/local_engine.h"
#include "tests/engine/reconfig_harness.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::MigrationMode;
using engine::Tuple;
using testing::MakeWikiStream;
using testing::ReconfigOptions;
using testing::ReconfigPipeline;

/// Extracts the numeric field \p key of the event named \p name from a
/// Chrome trace JSON document (first occurrence). Returns -1 if absent.
double EventField(const std::string& json, const std::string& name,
                  const std::string& key) {
  const size_t at = json.find("\"name\":\"" + name + "\"");
  if (at == std::string::npos) return -1.0;
  const size_t end = json.find('}', at);
  const size_t field = json.find("\"" + key + "\":", at);
  if (field == std::string::npos || field > end) return -1.0;
  return std::atof(json.c_str() + field + key.size() + 3);
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  {
    ALBIC_TRACE_SPAN("test", "invisible");
    ALBIC_TRACE_INSTANT("test", "also-invisible");
  }
  EXPECT_EQ(Tracer::Global().CollectedSpans(), 0u);
  EXPECT_EQ(Tracer::Global().ChromeTraceJson(), "{\"traceEvents\":[]}");
}

TEST_F(TraceTest, NestedScopesRecordContainedSpans) {
  Tracer::Global().Enable();
  {
    ALBIC_TRACE_SPAN1("test", "outer", "round", 3);
    {
      ALBIC_TRACE_SPAN2("test", "inner", "group", 7, "to", 2);
    }
  }
  ALBIC_TRACE_INSTANT("test", "tick");
  Tracer::Global().Disable();
  ASSERT_EQ(Tracer::Global().CollectedSpans(), 3u);

  const std::string json = Tracer::Global().ChromeTraceJson();
  // The inner scope closes (and records) first, but its span must lie
  // within the outer span's [ts, ts+dur] window on the same thread.
  const double outer_ts = EventField(json, "outer", "ts");
  const double outer_dur = EventField(json, "outer", "dur");
  const double inner_ts = EventField(json, "inner", "ts");
  const double inner_dur = EventField(json, "inner", "dur");
  ASSERT_GE(outer_ts, 0.0) << json;
  ASSERT_GE(inner_ts, 0.0) << json;
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur + 1e-3);
  EXPECT_EQ(EventField(json, "outer", "tid"), EventField(json, "inner", "tid"));
  // Args and categories survive into the document; the instant event is a
  // ph:"i" tick.
  EXPECT_NE(json.find("\"round\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"group\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
}

TEST_F(TraceTest, FullBufferDropsAndCountsInsteadOfBlocking) {
  Tracer::Global().Enable();
  for (size_t i = 0; i < Tracer::kSpansPerThread + 100; ++i) {
    ALBIC_TRACE_SPAN("test", "flood");
  }
  Tracer::Global().Disable();
  EXPECT_EQ(Tracer::Global().CollectedSpans(), Tracer::kSpansPerThread);
  EXPECT_GE(Tracer::Global().Dropped(), 100);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().CollectedSpans(), 0u);
  EXPECT_EQ(Tracer::Global().Dropped(), 0);
}

TEST_F(TraceTest, WorkerThreadsPublishSpansDuringWaves) {
  // A multi-worker batched pipeline under tracing: worker threads register
  // their own buffers and publish op.batch spans from inside wave drains;
  // the collector must see the wave spans (engine thread) and the batch
  // spans (worker threads) committed at the wave barrier.
  ReconfigOptions opts;
  opts.num_workers = 2;
  ReconfigPipeline p(opts);
  const std::vector<Tuple> stream = MakeWikiStream(4000);

  Tracer::Global().Enable();
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  Tracer::Global().Disable();

  ASSERT_GT(Tracer::Global().CollectedSpans(), 0u);
  EXPECT_EQ(Tracer::Global().Dropped(), 0);
  const std::string json = Tracer::Global().ChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"wave\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op.batch\""), std::string::npos);
}

TEST_F(TraceTest, MigrationModesLeaveDistinctSpans) {
  ReconfigOptions opts;
  opts.nodes = 4;
  ReconfigPipeline p(opts);
  p.EnableCheckpointing();
  if (::testing::Test::HasFatalFailure()) return;
  const std::vector<Tuple> stream = MakeWikiStream(4000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  // The indirect move needs a checkpoint to restore from (without one it
  // falls back to a direct pause — and a direct span).
  ASSERT_TRUE(p.coordinator->CheckpointNow(p.engine.get()).ok());

  Tracer::Global().Enable();
  ASSERT_TRUE(
      p.engine->MigrateGroup(0, /*to=*/1, MigrationMode::kDirect).ok());
  ASSERT_TRUE(
      p.engine->MigrateGroup(1, /*to=*/2, MigrationMode::kIndirect).ok());
  ASSERT_TRUE(
      p.engine->MigrateGroup(2, /*to=*/3, MigrationMode::kEpoch).ok());
  Tracer::Global().Disable();

  const std::string json = Tracer::Global().ChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"migration.direct\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"migration.indirect\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"migration.epoch.finish\""),
            std::string::npos)
      << json;
}

TEST_F(TraceTest, EngineOutputsBitIdenticalWithObservabilityOnAndOff) {
  // The cost contract's correctness half: a fully-observed run (tracer on,
  // registry attached) must produce byte-identical state and windowed
  // output to a bare run over the same stream and schedule.
  const std::vector<Tuple> stream = MakeWikiStream(6000);
  const auto drive = [&](ReconfigPipeline* p) {
    ASSERT_TRUE(
        p->engine->InjectBatch(0, stream.data(), stream.size() / 2).ok());
    ASSERT_TRUE(p->engine
                    ->MigrateGroup(1, /*to=*/2, MigrationMode::kDirect)
                    .ok());
    ASSERT_TRUE(p->engine
                    ->InjectBatch(0, stream.data() + stream.size() / 2,
                                  stream.size() - stream.size() / 2)
                    .ok());
    p->engine->Flush();
  };

  ReconfigOptions bare_opts;
  ReconfigPipeline bare(bare_opts);
  drive(&bare);
  if (::testing::Test::HasFatalFailure()) return;

  MetricsRegistry registry;
  ReconfigOptions observed_opts;
  observed_opts.metrics = &registry;
  ReconfigPipeline observed(observed_opts);
  Tracer::Global().Enable();
  drive(&observed);
  Tracer::Global().Disable();
  if (::testing::Test::HasFatalFailure()) return;

  testing::ExpectSameOutputs(&observed, &bare, "observability on/off");
  // And the observed run really was observed (counters publish at the
  // period harvest).
  EXPECT_GT(Tracer::Global().CollectedSpans(), 0u);
  observed.engine->HarvestPeriod();
  EXPECT_GT(registry.Counter("engine_tuples_processed_total")->value(), 0);
}

}  // namespace
}  // namespace albic
