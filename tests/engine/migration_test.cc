#include "engine/migration.h"

#include <gtest/gtest.h>

namespace albic::engine {
namespace {

TEST(MigrationTest, CostIsAlphaTimesState) {
  Topology topo;
  topo.AddOperator("a", 2, /*state=*/2 << 20);
  MigrationCostModel model;
  model.alpha_per_byte = 1.0 / (1 << 20);
  EXPECT_DOUBLE_EQ(MigrationCost(topo, 0, model), 2.0);
  std::vector<double> all = AllMigrationCosts(topo, model);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[1], 2.0);
}

TEST(MigrationTest, ApplyMovesAndAccounts) {
  Topology topo;
  topo.AddOperator("a", 3, 1 << 20);
  Assignment assign(3);
  assign.set_node(0, 0);
  assign.set_node(1, 0);
  assign.set_node(2, 1);
  MigrationCostModel model;
  std::vector<Migration> migs = {{0, 0, 1}, {2, 1, 1}};  // second is a no-op
  MigrationReport report = ApplyMigrations(migs, topo, model, &assign);
  EXPECT_EQ(report.count, 1);
  EXPECT_DOUBLE_EQ(report.total_cost, 1.0);
  EXPECT_NEAR(report.total_pause_seconds, 2.5, 1e-9);
  EXPECT_EQ(assign.node_of(0), 1);
  EXPECT_EQ(assign.node_of(2), 1);
}

TEST(MigrationTest, PauseScalesWithStateSize) {
  Topology topo;
  topo.AddOperator("big", 1, 4.0 * (1 << 20));
  Assignment assign(1);
  assign.set_node(0, 0);
  MigrationCostModel model;
  MigrationReport report =
      ApplyMigrations({{0, 0, 1}}, topo, model, &assign);
  EXPECT_NEAR(report.total_pause_seconds, 10.0, 1e-9);  // 4 MiB * 2.5 s/MiB
}

}  // namespace
}  // namespace albic::engine
