#include "engine/local_engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "ops/aggregate.h"

namespace albic::engine {
namespace {

/// Pass-through operator that re-emits every tuple (for routing tests).
class Forward : public StreamOperator {
 public:
  void Process(const Tuple& t, int /*group*/, Emitter* out) override {
    out->Emit(t);
  }
};

struct Fixture {
  Topology topo;
  Cluster cluster{2};
  Forward forward;
  ops::SumByKeyOperator sum{4, ops::GroupField::kKey, /*emit_updates=*/false};
  std::unique_ptr<LocalEngine> engine;

  explicit Fixture(PartitioningPattern pattern =
                       PartitioningPattern::kFullPartitioning) {
    topo.AddOperator("fwd", 4);
    topo.AddOperator("sum", 4);
    EXPECT_TRUE(topo.AddStream(0, 1, pattern).ok());
    Assignment assign(8);
    // fwd groups on node 0, sum groups on node 1 (all traffic remote).
    for (KeyGroupId g = 0; g < 4; ++g) assign.set_node(g, 0);
    for (KeyGroupId g = 4; g < 8; ++g) assign.set_node(g, 1);
    LocalEngineOptions opts;
    opts.serde_cost = 0.5;
    opts.window_every_us = 0;
    engine = std::make_unique<LocalEngine>(
        &topo, &cluster, assign,
        std::vector<StreamOperator*>{&forward, &sum}, opts);
  }
};

TEST(LocalEngineTest, RoutesByKeyHashDeterministically) {
  Fixture f;
  Tuple t;
  t.key = 1234;
  t.num = 2.0;
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  const int group = LocalEngine::RouteKey(1234, 4);
  EXPECT_DOUBLE_EQ(f.sum.SumFor(group, 1234), 4.0);
}

TEST(LocalEngineTest, AccountsProcessingAndSerde) {
  Fixture f;
  Tuple t;
  t.key = 7;
  t.num = 1.0;
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  EnginePeriodStats stats = f.engine->HarvestPeriod();
  // fwd processed 1 tuple on node 0, sum processed 1 on node 1; the hop is
  // remote so each side pays 0.5 serde.
  EXPECT_DOUBLE_EQ(stats.node_work[0], 1.0 + 0.5);
  EXPECT_DOUBLE_EQ(stats.node_work[1], 1.0 + 0.5);
  EXPECT_EQ(stats.tuples_processed, 2);
  EXPECT_DOUBLE_EQ(stats.comm.TotalTraffic(), 1.0);
}

TEST(LocalEngineTest, CollocationEliminatesSerde) {
  Fixture f;
  // Move every sum group to node 0.
  for (KeyGroupId g = 4; g < 8; ++g) {
    ASSERT_TRUE(f.engine->MigrateGroup(g, 0).ok());
  }
  (void)f.engine->HarvestPeriod();  // discard migration-era stats
  Tuple t;
  t.key = 7;
  t.num = 1.0;
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  EnginePeriodStats stats = f.engine->HarvestPeriod();
  EXPECT_DOUBLE_EQ(stats.node_work[0], 2.0);  // both ops, no serde
  EXPECT_DOUBLE_EQ(stats.node_work[1], 0.0);
}

TEST(LocalEngineTest, OneToOnePatternPreservesGroupIndex) {
  Fixture f(PartitioningPattern::kOneToOne);
  Tuple t;
  t.key = 42;
  t.num = 3.0;
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  const int src_group = LocalEngine::RouteKey(42, 4);
  EXPECT_DOUBLE_EQ(f.sum.SumFor(src_group, 42), 3.0);
  EnginePeriodStats stats = f.engine->HarvestPeriod();
  EXPECT_DOUBLE_EQ(stats.comm.Rate(src_group, 4 + src_group), 1.0);
}

TEST(LocalEngineTest, DirectMigrationMovesStateAndDrainsBuffer) {
  Fixture f;
  Tuple t;
  t.key = 99;
  t.num = 5.0;
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  const int local = LocalEngine::RouteKey(99, 4);
  const KeyGroupId g = 4 + local;
  EXPECT_DOUBLE_EQ(f.sum.SumFor(local, 99), 5.0);

  ASSERT_TRUE(f.engine->StartMigration(g, 0).ok());
  // Tuples during migration are buffered, not processed.
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  EXPECT_DOUBLE_EQ(f.sum.SumFor(local, 99), 5.0);

  auto pause = f.engine->FinishMigration(g);
  ASSERT_TRUE(pause.ok());
  EXPECT_GT(*pause, 0.0);  // non-empty state was serialized
  // Buffered tuple drained after the move; state survived the round-trip.
  EXPECT_DOUBLE_EQ(f.sum.SumFor(local, 99), 10.0);
  EXPECT_EQ(f.engine->assignment().node_of(g), 0);
}

TEST(LocalEngineTest, MigrationValidation) {
  Fixture f;
  EXPECT_FALSE(f.engine->StartMigration(99, 0).ok());   // unknown group
  EXPECT_FALSE(f.engine->StartMigration(4, 1).ok());    // already there
  EXPECT_FALSE(f.engine->FinishMigration(4).ok());      // not migrating
  ASSERT_TRUE(f.engine->StartMigration(4, 0).ok());
  EXPECT_FALSE(f.engine->StartMigration(4, 0).ok());    // double start
  ASSERT_TRUE(f.engine->FinishMigration(4).ok());
}

TEST(LocalEngineTest, BufferedTupleCountsReported) {
  Fixture f;
  ASSERT_TRUE(f.engine->StartMigration(4, 0).ok());
  Tuple t;
  // Find a key routing to sum group 0.
  for (uint64_t k = 0; k < 64; ++k) {
    if (LocalEngine::RouteKey(k, 4) == 0) {
      t.key = k;
      break;
    }
  }
  ASSERT_TRUE(f.engine->Inject(0, t).ok());
  ASSERT_TRUE(f.engine->FinishMigration(4).ok());
  EnginePeriodStats stats = f.engine->HarvestPeriod();
  EXPECT_EQ(stats.tuples_buffered, 1);
}

TEST(LocalEngineTest, WindowsFireOnEventTime) {
  Topology topo;
  topo.AddOperator("fwd", 2);
  Cluster cluster(1);
  Assignment assign(2);
  assign.set_node(0, 0);
  assign.set_node(1, 0);

  class WindowCounter : public StreamOperator {
   public:
    void Process(const Tuple&, int, Emitter*) override {}
    void OnWindow(int, Emitter*) override { ++windows; }
    int windows = 0;
  } counter;

  LocalEngineOptions opts;
  opts.window_every_us = 60'000'000;  // 1 minute
  LocalEngine engine(&topo, &cluster, assign, {&counter}, opts);
  Tuple t;
  t.ts = 1'000'000;
  ASSERT_TRUE(engine.Inject(0, t).ok());   // initializes window origin
  EXPECT_EQ(counter.windows, 0);
  t.ts += 61'000'000;
  ASSERT_TRUE(engine.Inject(0, t).ok());   // one window boundary crossed
  EXPECT_EQ(counter.windows, 2);           // 2 groups x 1 window
  t.ts += 180'000'000;                      // three more boundaries
  ASSERT_TRUE(engine.Inject(0, t).ok());
  EXPECT_EQ(counter.windows, 8);
}

}  // namespace
}  // namespace albic::engine
