#include "engine/comm_matrix.h"

#include <gtest/gtest.h>

namespace albic::engine {
namespace {

TEST(CommMatrixTest, AddAccumulates) {
  CommMatrix m(3);
  m.Add(0, 1, 2.0);
  m.Add(0, 1, 3.0);
  m.Add(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(m.Rate(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.Rate(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.Rate(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.TotalOut(0), 6.0);
  EXPECT_DOUBLE_EQ(m.TotalTraffic(), 6.0);
}

TEST(CommMatrixTest, SetRowReplaces) {
  CommMatrix m(2);
  m.Add(0, 1, 9.0);
  m.SetRow(0, {{1, 1.0}});
  EXPECT_DOUBLE_EQ(m.Rate(0, 1), 1.0);
}

TEST(CommMatrixTest, ClearEmpties) {
  CommMatrix m(2);
  m.Add(0, 1, 1.0);
  m.Add(1, 0, 2.0);
  m.Clear();
  EXPECT_DOUBLE_EQ(m.TotalTraffic(), 0.0);
  EXPECT_EQ(m.num_groups(), 2);
}

TEST(CommMatrixTest, RowAccess) {
  CommMatrix m(2);
  m.Add(0, 1, 1.5);
  ASSERT_EQ(m.row(0).size(), 1u);
  EXPECT_EQ(m.row(0)[0].to, 1);
  EXPECT_TRUE(m.row(1).empty());
}

}  // namespace
}  // namespace albic::engine
