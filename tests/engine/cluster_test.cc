#include "engine/cluster.h"

#include <gtest/gtest.h>

namespace albic::engine {
namespace {

TEST(ClusterTest, ConstructionAndCapacity) {
  Cluster c(3, 2.0);
  EXPECT_EQ(c.num_nodes_total(), 3);
  EXPECT_EQ(c.num_active(), 3);
  EXPECT_DOUBLE_EQ(c.capacity(1), 2.0);
  EXPECT_EQ(c.retained_nodes().size(), 3u);
  EXPECT_TRUE(c.marked_nodes().empty());
}

TEST(ClusterTest, AddNodeScaleOut) {
  Cluster c(2);
  NodeId n = c.AddNode(1.5);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(c.num_active(), 3);
  EXPECT_DOUBLE_EQ(c.capacity(n), 1.5);
}

TEST(ClusterTest, MarkDrainsIntoSets) {
  Cluster c(4);
  ASSERT_TRUE(c.MarkForRemoval(1).ok());
  ASSERT_TRUE(c.MarkForRemoval(3).ok());
  EXPECT_EQ(c.retained_nodes(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(c.marked_nodes(), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(c.active_nodes().size(), 4u);  // marked nodes still active
  EXPECT_TRUE(c.is_marked(1));
  ASSERT_TRUE(c.UnmarkForRemoval(1).ok());
  EXPECT_FALSE(c.is_marked(1));
}

TEST(ClusterTest, TerminateRemovesFromActive) {
  Cluster c(3);
  ASSERT_TRUE(c.MarkForRemoval(2).ok());
  ASSERT_TRUE(c.Terminate(2).ok());
  EXPECT_FALSE(c.is_active(2));
  EXPECT_FALSE(c.is_marked(2));
  EXPECT_EQ(c.num_active(), 2);
  EXPECT_EQ(c.active_nodes(), (std::vector<NodeId>{0, 1}));
  // Ids remain stable: node 2 still addressable, just inactive.
  EXPECT_EQ(c.num_nodes_total(), 3);
}

TEST(ClusterTest, ErrorsOnInvalidOperations) {
  Cluster c(2);
  EXPECT_FALSE(c.MarkForRemoval(5).ok());
  EXPECT_FALSE(c.Terminate(-1).ok());
  ASSERT_TRUE(c.Terminate(1).ok());
  EXPECT_FALSE(c.Terminate(1).ok());       // double terminate
  EXPECT_FALSE(c.MarkForRemoval(1).ok());  // mark dead node
  EXPECT_FALSE(c.UnmarkForRemoval(1).ok());
}

}  // namespace
}  // namespace albic::engine
