// Sampled per-tuple journeys: the tracker's claim protocol (exactly one
// hop per (journey, operator), first batch at-or-past the sample's event
// time wins), worst-N retention, and the engine integration — journeys
// survive mid-stream migrations and recovery re-deliveries without
// duplicated hops, and render as nested spans when the tracer is on.

#include "engine/journey.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "engine/local_engine.h"
#include "engine/migration.h"
#include "ops/geohash.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::CompletedJourney;
using engine::JourneyTracker;
using engine::KeyGroupId;
using engine::Tuple;

constexpr int kNodes = 4;
constexpr int kGroups = 8;
constexpr int64_t kWindowUs = 60LL * 1000 * 1000;

// ---------------------------------------------------------------------------
// Tracker unit tests (synthetic hops, no engine).

TEST(JourneyTrackerTest, ClaimsEachOperatorHopExactlyOnce) {
  JourneyTracker tracker;
  // Two operators; operator 1 is the sink.
  tracker.Enable(/*sample_every=*/1, /*num_operators=*/2, {0, 1});
  ASSERT_TRUE(tracker.enabled());
  tracker.MaybeStart(/*event_ts_us=*/1000, /*wall_ns=*/10, /*count=*/1);

  // A batch older than the sample must NOT claim the hop.
  tracker.OnBatchDelivered(/*op=*/0, /*group=*/3, /*last_ts=*/999,
                           /*enqueue_ns=*/20, /*t0_ns=*/30, /*t1_ns=*/40);
  // The first batch at-or-past the stamp claims it; later ones (e.g. a
  // re-delivery after a migration replay) must lose the exchange.
  tracker.OnBatchDelivered(0, 4, 1000, 50, 60, 80);
  tracker.OnBatchDelivered(0, 5, 2000, 90, 100, 120);
  // Sink hop completes the journey.
  tracker.OnBatchDelivered(1, 6, 1500, 130, 140, 200);

  std::vector<CompletedJourney> worst;
  tracker.Sweep(&worst);
  ASSERT_EQ(worst.size(), 1u);
  const CompletedJourney& j = worst[0];
  EXPECT_EQ(j.event_ts_us, 1000);
  EXPECT_EQ(j.ingest_wall_ns, 10);
  ASSERT_EQ(j.hops.size(), 2u);
  // Hop 0 belongs to the first claiming batch — group 4, not 5.
  EXPECT_EQ(j.hops[0].op, 0);
  EXPECT_EQ(j.hops[0].group, 4);
  EXPECT_EQ(j.hops[0].start_ns, 50);  // enqueue stamp present -> queue wait
  EXPECT_EQ(j.hops[0].end_ns, 80);
  EXPECT_DOUBLE_EQ(j.hops[0].queue_us, (60 - 50) / 1000.0);
  EXPECT_DOUBLE_EQ(j.hops[0].service_us, (80 - 60) / 1000.0);
  EXPECT_EQ(j.hops[1].op, 1);
  EXPECT_EQ(j.hops[1].group, 6);
  // End-to-end: ingest wall stamp to sink service end.
  EXPECT_DOUBLE_EQ(j.e2e_us, (200 - 10) / 1000.0);
}

TEST(JourneyTrackerTest, IncompleteJourneysStayActiveUntilDropped) {
  JourneyTracker tracker;
  tracker.Enable(1, 2, {0, 1});
  tracker.MaybeStart(1000, 10, 1);
  tracker.OnBatchDelivered(0, 0, 1000, 0, 20, 30);  // non-sink hop only

  std::vector<CompletedJourney> worst;
  tracker.Sweep(&worst);
  EXPECT_TRUE(worst.empty());  // no sink hop claimed yet

  // Period harvest drops the in-flight journey; the freed slot must not
  // leak its old claims into a journey started later.
  tracker.DropActive();
  tracker.MaybeStart(5000, 100, 1);
  tracker.OnBatchDelivered(1, 2, 6000, 0, 200, 300);
  tracker.Sweep(&worst);
  ASSERT_EQ(worst.size(), 1u);
  ASSERT_EQ(worst[0].hops.size(), 1u);  // only the new sink hop
  EXPECT_EQ(worst[0].hops[0].op, 1);
}

TEST(JourneyTrackerTest, KeepsTheWorstJourneysByEndToEndLatency) {
  JourneyTracker tracker;
  tracker.Enable(1, 1, {1});  // single sink operator
  std::vector<CompletedJourney> worst;
  // Complete more journeys than the retention cap; e2e grows with i except
  // journey 0, which is made the slowest of all.
  const int total = JourneyTracker::kWorstPerPeriod + 3;
  for (int i = 0; i < total; ++i) {
    const int64_t ts = 1000 * (i + 1);
    tracker.MaybeStart(ts, /*wall_ns=*/1, 1);
    const int64_t end = (i == 0) ? 1000000 : 100 * (i + 1);
    tracker.OnBatchDelivered(0, 0, ts, 0, 2, end);
    tracker.Sweep(&worst);
  }
  ASSERT_EQ(worst.size(), static_cast<size_t>(JourneyTracker::kWorstPerPeriod));
  // The slowest journey (the first one) survived the eviction.
  double max_e2e = 0;
  for (const CompletedJourney& j : worst) max_e2e = std::max(max_e2e, j.e2e_us);
  EXPECT_DOUBLE_EQ(max_e2e, (1000000 - 1) / 1000.0);
}

TEST(JourneyTrackerTest, SamplingIntervalAndSlotExhaustion) {
  JourneyTracker tracker;
  tracker.Enable(/*sample_every=*/100, 1, {1});
  std::vector<CompletedJourney> worst;
  // The very first tuple starts a journey (countdown primes at 1, like
  // the ingest-sample ring); after that a fresh interval must elapse.
  tracker.MaybeStart(10, 1, 1);
  tracker.MaybeStart(20, 1, 99);  // 99 of the next 100: not yet
  // Fill every remaining slot, then exhaust: the overflow samples are
  // skipped, not queued.
  for (int i = 0; i < JourneyTracker::kMaxActive + 2; ++i) {
    tracker.MaybeStart(30 + i, 1, 100);
  }
  // Complete everything in flight; only kMaxActive journeys ever existed.
  tracker.OnBatchDelivered(0, 0, 1000000, 0, 2, 3);
  tracker.Sweep(&worst);
  EXPECT_EQ(worst.size(), static_cast<size_t>(JourneyTracker::kMaxActive));
}

// ---------------------------------------------------------------------------
// Engine integration.

/// The wiki pipeline with journey sampling on (requires latency
/// telemetry) — geohash -> topk -> global topk, the global being the sink.
struct Pipeline {
  engine::Topology topo;
  engine::Cluster cluster{kNodes};
  ops::GeoHashOperator geohash{kGroups, 256};
  ops::WindowedTopKOperator topk{kGroups, 16};
  ops::WindowedTopKOperator global{kGroups, 16, ops::TopKCountMode::kSumNum};
  std::unique_ptr<engine::LocalEngine> engine;

  explicit Pipeline(int journey_sample_every, int num_workers = 1) {
    topo.AddOperator("geohash", kGroups, 1 << 14);
    topo.AddOperator("topk", kGroups, 1 << 14);
    topo.AddOperator("global", kGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kNodes);
    }
    engine::LocalEngineOptions opts;
    opts.window_every_us = kWindowUs;
    opts.mode = engine::ExecutionMode::kBatched;
    opts.num_workers = num_workers;
    opts.latency_sample_every = 32;
    opts.journey_sample_every = journey_sample_every;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global}, opts);
  }
};

std::vector<Tuple> MakeStream(int tuples) {
  workload::WikipediaEditStream edits(/*articles=*/300, /*seed=*/5,
                                      /*rate_per_second=*/400.0);
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(tuples));
  for (int i = 0; i < tuples; ++i) out.push_back(edits.Next());
  return out;
}

// Every journey must have at most one hop per operator, hops in operator
// order, and a positive end-to-end latency.
void CheckJourneyShape(const std::vector<CompletedJourney>& journeys,
                       int num_operators) {
  for (const CompletedJourney& j : journeys) {
    EXPECT_GT(j.e2e_us, 0.0) << "journey " << j.id;
    EXPECT_LE(j.hops.size(), static_cast<size_t>(num_operators));
    std::vector<int> seen(static_cast<size_t>(num_operators), 0);
    int prev_op = -1;
    for (const engine::JourneyHop& h : j.hops) {
      ASSERT_GE(h.op, 0);
      ASSERT_LT(h.op, num_operators);
      ++seen[static_cast<size_t>(h.op)];
      EXPECT_GT(h.op, prev_op) << "hops out of operator order";
      prev_op = h.op;
      EXPECT_GE(h.service_us, 0.0);
      EXPECT_GE(h.end_ns, h.start_ns);
    }
    for (int op = 0; op < num_operators; ++op) {
      EXPECT_LE(seen[static_cast<size_t>(op)], 1)
          << "operator " << op << " claimed twice in journey " << j.id;
    }
  }
}

TEST(JourneyEngineTest, HarvestsWorstJourneysWithOrderedHops) {
  Pipeline p(/*journey_sample_every=*/64);
  ASSERT_TRUE(p.engine->journey_sampling_enabled());
  const std::vector<Tuple> stream = MakeStream(60000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_FALSE(stats.journeys.empty());
  EXPECT_LE(stats.journeys.size(),
            static_cast<size_t>(JourneyTracker::kWorstPerPeriod));
  CheckJourneyShape(stats.journeys, 3);
  // The sampled journeys reached the pipeline's first operator at least.
  bool any_geohash_hop = false;
  for (const CompletedJourney& j : stats.journeys) {
    for (const engine::JourneyHop& h : j.hops) {
      if (h.op == 0) any_geohash_hop = true;
    }
  }
  EXPECT_TRUE(any_geohash_hop);
  // No new tuples between harvests: the next period completes nothing.
  engine::EnginePeriodStats next = p.engine->HarvestPeriod();
  EXPECT_TRUE(next.journeys.empty());
}

// A sampled tuple waiting for its window to close legitimately spans
// controller periods, so a mid-run harvest must not drop the in-flight
// journeys — its completion lands in a later period's worst-N.
TEST(JourneyEngineTest, JourneysSurviveMidRunHarvests) {
  // An interval longer than the stream means exactly one journey ever
  // starts (the countdown primes at 1, so the first tuple samples); if the
  // mid-run harvest dropped it, nothing could complete afterwards.
  Pipeline p(/*journey_sample_every=*/1 << 30);
  const std::vector<Tuple> stream = MakeStream(60000);
  // First window fires around 60s of event time (~24000 tuples at 400/s);
  // harvest well before that, while every journey is still in flight.
  const size_t half = 20000;
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), half).ok());
  p.engine->Flush();
  engine::EnginePeriodStats early = p.engine->HarvestPeriod();
  EXPECT_TRUE(early.journeys.empty()) << "no window fired yet";
  ASSERT_TRUE(
      p.engine->InjectBatch(0, stream.data() + half, stream.size() - half)
          .ok());
  p.engine->Flush();
  engine::EnginePeriodStats late = p.engine->HarvestPeriod();
  ASSERT_FALSE(late.journeys.empty())
      << "journeys started before the harvest never completed";
  CheckJourneyShape(late.journeys, 3);
}

TEST(JourneyEngineTest, MultiWorkerClaimsStayExactlyOnce) {
  Pipeline p(/*journey_sample_every=*/64, /*num_workers=*/3);
  const std::vector<Tuple> stream = MakeStream(60000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_FALSE(stats.journeys.empty());
  CheckJourneyShape(stats.journeys, 3);
}

TEST(JourneyEngineTest, MigrationRedeliveriesDoNotDuplicateHops) {
  Pipeline p(/*journey_sample_every=*/32);
  // One continuous stream, split so the second half lands mid-migration
  // (event time keeps advancing across the split — windows still fire).
  const std::vector<Tuple> stream = MakeStream(60000);
  const size_t half = stream.size() / 2;
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), half).ok());
  p.engine->Flush();

  // Migrate two groups with tuples buffered mid-migration: the buffered
  // batches re-deliver after FinishMigration, offering duplicate claim
  // opportunities to any journey in flight.
  for (KeyGroupId g = 0; g < 2; ++g) {
    const engine::NodeId from = p.engine->assignment().node_of(g);
    ASSERT_TRUE(p.engine->StartMigration(g, (from + 1) % kNodes).ok());
  }
  ASSERT_TRUE(
      p.engine->InjectBatch(0, stream.data() + half, stream.size() - half)
          .ok());
  p.engine->Flush();
  for (KeyGroupId g = 0; g < 2; ++g) {
    ASSERT_TRUE(p.engine->FinishMigration(g).ok());
  }
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  ASSERT_FALSE(stats.journeys.empty());
  CheckJourneyShape(stats.journeys, 3);
}

TEST(JourneyEngineTest, TracerRendersCompletedJourneysAsSpans) {
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  Pipeline p(/*journey_sample_every=*/64);
  const std::vector<Tuple> stream = MakeStream(60000);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  p.engine->Flush();
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  Tracer::Global().Disable();
  ASSERT_FALSE(stats.journeys.empty());
  const std::string json = Tracer::Global().ChromeTraceJson();
  Tracer::Global().Clear();
  EXPECT_NE(json.find("\"journey\""), std::string::npos);
  EXPECT_NE(json.find("\"journey.hop\""), std::string::npos);
}

}  // namespace
}  // namespace albic
