// StateArena / LeaseTable unit contracts plus the engine-level invariant
// they exist to enforce: EVERY reconfiguration — byte-moving migration,
// zero-copy lease flip, failure recovery — lands in LeaseTable::Flip, so
// lease epochs and the flip count are a complete audit of ownership
// changes. A reconfiguration path that mutated the assignment without
// going through the arena would break the counts here.

#include <gtest/gtest.h>

#include <vector>

#include "engine/assignment.h"
#include "engine/local_engine.h"
#include "engine/state_arena.h"
#include "engine/topology.h"
#include "tests/engine/reconfig_harness.h"

namespace albic {
namespace {

using engine::Assignment;
using engine::KeyGroupId;
using engine::LeaseTable;
using engine::MigrationMode;
using engine::NodeId;
using engine::StateArena;
using engine::Tuple;
using testing::MakeWikiStream;
using testing::ReconfigOptions;
using testing::ReconfigPipeline;

TEST(LeaseTableTest, FlipReassignsAndAdvancesEpochs) {
  Assignment initial(4);
  for (KeyGroupId g = 0; g < 4; ++g) initial.set_node(g, g % 2);
  LeaseTable table(initial);

  EXPECT_EQ(table.flips(), 0);
  for (KeyGroupId g = 0; g < 4; ++g) {
    EXPECT_EQ(table.owner_of(g), g % 2);
    EXPECT_EQ(table.lease_epoch(g), 0u);
  }

  table.Flip(2, 3);
  EXPECT_EQ(table.owner_of(2), 3);
  EXPECT_EQ(table.lease_epoch(2), 1u);
  EXPECT_EQ(table.flips(), 1);
  // Other groups' epochs are untouched.
  EXPECT_EQ(table.lease_epoch(0), 0u);
  EXPECT_EQ(table.lease_epoch(1), 0u);
  EXPECT_EQ(table.lease_epoch(3), 0u);

  // A second flip of the same group advances its epoch again, even when it
  // flips back to the original owner — epochs count hand-offs, not homes.
  table.Flip(2, 0);
  EXPECT_EQ(table.owner_of(2), 0);
  EXPECT_EQ(table.lease_epoch(2), 2u);
  EXPECT_EQ(table.flips(), 2);

  // The assignment view is the same map the owner_of accessor reads.
  EXPECT_EQ(table.assignment().node_of(2), 0);
  EXPECT_EQ(table.assignment().num_groups(), 4);
}

TEST(StateArenaTest, OwnsSlotTableAndDelegatesLeases) {
  engine::Topology topo;
  topo.AddOperator("source", 3, 1 << 10);
  topo.AddOperator("sink", 3, 1 << 10);
  ASSERT_TRUE(
      topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
          .ok());
  Assignment initial(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    initial.set_node(g, 0);
  }
  // Slot entries may be null (stateless sources own no state).
  StateArena arena(&topo, {nullptr, nullptr}, initial);

  EXPECT_EQ(arena.operators().size(), 2u);
  EXPECT_EQ(arena.slot(0), nullptr);
  EXPECT_EQ(arena.slot(1), nullptr);
  EXPECT_EQ(arena.owner_of(4), 0);

  arena.Flip(4, 2);
  EXPECT_EQ(arena.owner_of(4), 2);
  EXPECT_EQ(arena.assignment().node_of(4), 2);
  EXPECT_EQ(arena.leases().lease_epoch(4), 1u);
  EXPECT_EQ(arena.leases().flips(), 1);
}

// Engine-level invariant: migrations of every mode and failure recovery
// all go through the arena, so the lease audit matches the
// reconfiguration schedule exactly.
TEST(StateArenaTest, EngineReconfigurationsAllLandInLeaseTable) {
  ReconfigOptions opts;
  opts.nodes = 3;
  ReconfigPipeline p(opts);
  p.EnableCheckpointing();
  ASSERT_TRUE(p.coordinator != nullptr);

  const std::vector<Tuple> stream = MakeWikiStream(600);
  ASSERT_TRUE(p.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  ASSERT_TRUE(p.coordinator->CheckpointNow(p.engine.get()).ok());

  // Construction and ingestion alone flip nothing.
  EXPECT_EQ(p.engine->arena().leases().flips(), 0);

  // One migration per mode; each is exactly one flip of its group.
  const MigrationMode modes[] = {MigrationMode::kDirect,
                                 MigrationMode::kIndirect,
                                 MigrationMode::kEpoch, MigrationMode::kLease};
  int64_t expected_flips = 0;
  KeyGroupId g = 0;
  for (const MigrationMode mode : modes) {
    const NodeId from = p.engine->assignment().node_of(g);
    const NodeId to = (from + 1) % opts.nodes;
    ASSERT_TRUE(p.engine->MigrateGroup(g, to, mode).ok());
    ++expected_flips;
    EXPECT_EQ(p.engine->arena().owner_of(g), to);
    EXPECT_EQ(p.engine->arena().leases().lease_epoch(g), 1u);
    EXPECT_EQ(p.engine->arena().leases().flips(), expected_flips);
    ++g;
  }

  // Failure recovery flips each lost group once (onto the survivor).
  ASSERT_TRUE(p.engine->FailNode(2).ok());
  const std::vector<KeyGroupId> lost = p.engine->lost_groups();
  ASSERT_FALSE(lost.empty());
  for (const KeyGroupId lg : lost) {
    ASSERT_TRUE(p.engine->RecoverGroup(lg, 0).ok());
    ++expected_flips;
    EXPECT_EQ(p.engine->arena().owner_of(lg), 0);
  }
  EXPECT_EQ(p.engine->arena().leases().flips(), expected_flips);

  // The engine's public assignment() is the arena's lease map — one source
  // of truth, not a shadow copy.
  EXPECT_EQ(&p.engine->assignment(), &p.engine->arena().assignment());
}

}  // namespace
}  // namespace albic
