#pragma once

/// \file
/// \brief Shared reconfiguration-test harness: the three-operator wiki
/// pipeline (geohash -> windowed top-k -> global top-k) behind the
/// migration-mode equivalence matrix and the randomized reconfiguration
/// soak test, plus the canonical-state capture both use to differentiate a
/// reconfigured run against a no-reconfiguration oracle bit for bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "engine/checkpoint.h"
#include "engine/local_engine.h"
#include "ops/geohash.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic::testing {

/// Shape of a harness pipeline. The defaults mirror the checkpoint tests;
/// the soak test widens the cluster and runs multi-worker.
struct ReconfigOptions {
  int nodes = 4;
  int groups = 8;  ///< Key groups PER OPERATOR (three operators).
  int64_t window_every_us = 500LL * 1000;
  int num_workers = 1;
  engine::ExecutionMode mode = engine::ExecutionMode::kBatched;
  /// Optional registry the engine publishes into (soak test: counters must
  /// be live when traffic flowed).
  MetricsRegistry* metrics = nullptr;
};

/// The wiki pipeline over the batched runtime with optional checkpointing.
/// Every piece of state serializes canonically (sorted), so two runs that
/// agree on content agree on bytes — the property the differentials ride.
struct ReconfigPipeline {
  ReconfigOptions opts;
  engine::Topology topo;
  engine::Cluster cluster;
  ops::GeoHashOperator geohash;
  ops::WindowedTopKOperator topk;
  ops::WindowedTopKOperator global;
  engine::MemoryCheckpointStore store;
  std::unique_ptr<engine::CheckpointCoordinator> coordinator;
  std::unique_ptr<engine::LocalEngine> engine;

  explicit ReconfigPipeline(ReconfigOptions o = ReconfigOptions())
      : opts(o),
        cluster(o.nodes),
        geohash(o.groups, 256),
        topk(o.groups, 64),
        global(o.groups, 64, ops::TopKCountMode::kSumNum) {
    topo.AddOperator("geohash", opts.groups, 1 << 14);
    topo.AddOperator("topk", opts.groups, 1 << 14);
    topo.AddOperator("global", opts.groups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (engine::KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % opts.nodes);
    }
    engine::LocalEngineOptions eopts;
    eopts.mode = opts.mode;
    eopts.window_every_us = opts.window_every_us;
    eopts.num_workers = opts.num_workers;
    eopts.metrics = opts.metrics;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global},
        eopts);
  }

  void EnableCheckpointing(engine::CheckpointCoordinatorOptions copts = {}) {
    coordinator =
        std::make_unique<engine::CheckpointCoordinator>(&store, copts);
    ASSERT_TRUE(engine->EnableCheckpointing(coordinator.get()).ok());
  }

  engine::StreamOperator* op(engine::OperatorId id) {
    engine::StreamOperator* ops[] = {&geohash, &topk, &global};
    return ops[id];
  }

  /// Canonical serialized state of one key group.
  std::string StateOf(engine::KeyGroupId g) {
    return op(topo.group_operator(g))
        ->SerializeGroupState(topo.group_index_in_operator(g));
  }

  /// Canonical serialized state of every key group, in group order.
  std::vector<std::string> AllStates() {
    std::vector<std::string> out;
    out.reserve(static_cast<size_t>(topo.num_key_groups()));
    for (engine::KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      out.push_back(StateOf(g));
    }
    return out;
  }

  /// Edit counts per article in the last closed window, merged over the
  /// global groups — the pipeline's end-to-end windowed output.
  std::map<uint64_t, int64_t> GlobalCounts() const {
    std::map<uint64_t, int64_t> out;
    for (int g = 0; g < opts.groups; ++g) {
      for (const auto& [article, count] : global.last_window_top(g)) {
        out[article] += count;
      }
    }
    return out;
  }
};

inline std::vector<engine::Tuple> MakeWikiStream(int tuples,
                                                 int articles = 250,
                                                 int seed = 101,
                                                 double rate = 2000.0) {
  workload::WikipediaEditStream edits(articles, seed, rate);
  std::vector<engine::Tuple> out;
  out.reserve(static_cast<size_t>(tuples));
  for (int i = 0; i < tuples; ++i) out.push_back(edits.Next());
  return out;
}

/// Bit-identity differential: every key group's canonical state and the
/// merged windowed output must match between the reconfigured pipeline and
/// its oracle. \p label names the failing configuration (e.g. the seed).
inline void ExpectSameOutputs(ReconfigPipeline* run,
                              ReconfigPipeline* oracle,
                              const std::string& label) {
  ASSERT_EQ(run->topo.num_key_groups(), oracle->topo.num_key_groups());
  for (engine::KeyGroupId g = 0; g < run->topo.num_key_groups(); ++g) {
    ASSERT_EQ(run->StateOf(g), oracle->StateOf(g))
        << label << ": group " << g << " state diverged from the oracle";
  }
  ASSERT_EQ(run->GlobalCounts(), oracle->GlobalCounts())
      << label << ": windowed output diverged from the oracle";
}

}  // namespace albic::testing
