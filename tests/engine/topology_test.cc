#include "engine/topology.h"

#include <gtest/gtest.h>

namespace albic::engine {
namespace {

Topology ThreeOpChain() {
  Topology t;
  t.AddOperator("src", 2, 1024, /*is_source=*/true);
  t.AddOperator("mid", 3);
  t.AddOperator("sink", 4);
  EXPECT_TRUE(t.AddStream(0, 1, PartitioningPattern::kFullPartitioning).ok());
  EXPECT_TRUE(t.AddStream(1, 2, PartitioningPattern::kOneToOne).ok());
  return t;
}

TEST(TopologyTest, GlobalGroupNumbering) {
  Topology t = ThreeOpChain();
  EXPECT_EQ(t.num_operators(), 3);
  EXPECT_EQ(t.num_key_groups(), 9);
  EXPECT_EQ(t.first_group(0), 0);
  EXPECT_EQ(t.first_group(1), 2);
  EXPECT_EQ(t.first_group(2), 5);
  EXPECT_EQ(t.group_operator(0), 0);
  EXPECT_EQ(t.group_operator(4), 1);
  EXPECT_EQ(t.group_operator(8), 2);
  EXPECT_EQ(t.group_index_in_operator(4), 2);
  EXPECT_EQ(t.group_index_in_operator(5), 0);
}

TEST(TopologyTest, GroupStateBytesFollowOperator) {
  Topology t = ThreeOpChain();
  EXPECT_DOUBLE_EQ(t.group_state_bytes(0), 1024.0);
  EXPECT_DOUBLE_EQ(t.group_state_bytes(3), 1 << 20);
}

TEST(TopologyTest, RejectsBadStreams) {
  Topology t = ThreeOpChain();
  EXPECT_FALSE(t.AddStream(0, 7, PartitioningPattern::kOneToOne).ok());
  EXPECT_FALSE(t.AddStream(-1, 1, PartitioningPattern::kOneToOne).ok());
  EXPECT_FALSE(t.AddStream(1, 1, PartitioningPattern::kOneToOne).ok());
}

TEST(TopologyTest, RejectsCycles) {
  Topology t = ThreeOpChain();
  EXPECT_FALSE(t.AddStream(2, 0, PartitioningPattern::kOneToOne).ok());
  EXPECT_FALSE(t.AddStream(1, 0, PartitioningPattern::kOneToOne).ok());
  // A new parallel branch is fine (DAG, not tree).
  EXPECT_TRUE(t.AddStream(0, 2, PartitioningPattern::kPartialMerge).ok());
}

TEST(TopologyTest, UpstreamDownstream) {
  Topology t = ThreeOpChain();
  EXPECT_EQ(t.downstream(0).size(), 1u);
  EXPECT_EQ(t.downstream(0)[0].to, 1);
  EXPECT_EQ(t.upstream(2).size(), 1u);
  EXPECT_EQ(t.upstream(2)[0].from, 1);
  EXPECT_TRUE(t.downstream(2).empty());
  EXPECT_TRUE(t.upstream(0).empty());
}

TEST(TopologyTest, TopologicalOrder) {
  Topology t;
  t.AddOperator("a", 1);
  t.AddOperator("b", 1);
  t.AddOperator("c", 1);
  t.AddOperator("d", 1);
  ASSERT_TRUE(t.AddStream(2, 1, PartitioningPattern::kOneToOne).ok());
  ASSERT_TRUE(t.AddStream(1, 0, PartitioningPattern::kOneToOne).ok());
  ASSERT_TRUE(t.AddStream(2, 3, PartitioningPattern::kOneToOne).ok());
  std::vector<OperatorId> order = t.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](OperatorId id) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return size_t{99};
  };
  EXPECT_LT(pos(2), pos(1));
  EXPECT_LT(pos(1), pos(0));
  EXPECT_LT(pos(2), pos(3));
}

TEST(TopologyTest, PatternNames) {
  EXPECT_STREQ(PartitioningPatternToString(PartitioningPattern::kOneToOne),
               "one-to-one");
  EXPECT_STREQ(
      PartitioningPatternToString(PartitioningPattern::kFullPartitioning),
      "full-partitioning");
}

}  // namespace
}  // namespace albic::engine
