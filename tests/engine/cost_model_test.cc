// MeasuredCostModel unit tests: the bit-identical fallback contract, the
// measured redistribution (total preserved, distribution from service
// shares), EWMA smoothing across periods, and the queue-delay trend
// detector (sustained growth vs. reset).

#include "engine/cost_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace albic::engine {
namespace {

LatencyPeriodStats PeriodWithService(const std::vector<double>& service_us,
                                     int num_operators = 1) {
  LatencyPeriodStats period;
  period.EnableFor(num_operators, static_cast<int>(service_us.size()));
  for (size_t g = 0; g < service_us.size(); ++g) {
    period.group_service[g].service_sum_us = service_us[g];
    period.group_service[g].tuples = 10;
  }
  return period;
}

TEST(MeasuredCostModelTest, TelemetryOffFallsBackBitIdentically) {
  MeasuredCostModel model;
  const std::vector<double> modeled = {10.0, 20.0, 30.0};
  LatencyPeriodStats off;  // enabled = false
  const std::vector<double> out = model.UpdateAndBlend(modeled, off);
  EXPECT_EQ(out, modeled);  // exact, not approximate
  EXPECT_FALSE(model.measured());
  EXPECT_TRUE(model.signals().group_service_share.empty());
  EXPECT_FALSE(model.signals().queue_trend.measured);
}

TEST(MeasuredCostModelTest, EnabledButEmptyPeriodFallsBack) {
  MeasuredCostModel model;
  const std::vector<double> modeled = {5.0, 5.0};
  LatencyPeriodStats empty;
  empty.EnableFor(1, 2);  // enabled, but nothing measured
  EXPECT_EQ(model.UpdateAndBlend(modeled, empty), modeled);
  EXPECT_FALSE(model.measured());
}

TEST(MeasuredCostModelTest, FallbackClearsStaleSignals) {
  MeasuredCostModel model;
  const std::vector<double> modeled = {10.0, 10.0};
  model.UpdateAndBlend(modeled, PeriodWithService({900.0, 100.0}));
  ASSERT_TRUE(model.measured());
  LatencyPeriodStats off;
  EXPECT_EQ(model.UpdateAndBlend(modeled, off), modeled);
  EXPECT_FALSE(model.measured());
  EXPECT_TRUE(model.signals().group_service_share.empty());
}

TEST(MeasuredCostModelTest, RedistributesBySharePreservingTotal) {
  MeasuredCostModel model;
  // Tuple counts say the groups are equal; the wall clock says group 0
  // costs 3x group 1.
  const std::vector<double> modeled = {50.0, 50.0};
  const std::vector<double> out =
      model.UpdateAndBlend(modeled, PeriodWithService({750.0, 250.0}));
  ASSERT_TRUE(model.measured());
  EXPECT_DOUBLE_EQ(out[0] + out[1], 100.0);
  EXPECT_DOUBLE_EQ(out[0], 75.0);
  EXPECT_DOUBLE_EQ(out[1], 25.0);
  EXPECT_DOUBLE_EQ(model.signals().group_service_share[0], 0.75);
}

TEST(MeasuredCostModelTest, SharesSmoothAcrossPeriods) {
  MeasuredCostOptions options;
  options.ewma_alpha = 0.5;
  MeasuredCostModel model(options);
  const std::vector<double> modeled = {50.0, 50.0};
  model.UpdateAndBlend(modeled, PeriodWithService({1000.0, 0.0}));
  EXPECT_DOUBLE_EQ(model.signals().group_service_share[0], 1.0);
  // A one-period flip only moves the EWMA halfway.
  model.UpdateAndBlend(modeled, PeriodWithService({0.0, 1000.0}));
  EXPECT_DOUBLE_EQ(model.signals().group_service_share[0], 0.5);
  EXPECT_DOUBLE_EQ(model.signals().group_service_share[1], 0.5);
}

LatencyPeriodStats PeriodWithQueueP99(int64_t queue_us) {
  LatencyPeriodStats period = PeriodWithService({100.0, 100.0});
  period.queue_us.RecordN(queue_us, 100);
  return period;
}

TEST(MeasuredCostModelTest, QueueTrendDetectsSustainedGrowthAndResets) {
  MeasuredCostOptions options;
  options.ewma_alpha = 1.0;  // no smoothing: the trend tracks raw p99s
  MeasuredCostModel model(options);
  const std::vector<double> modeled = {50.0, 50.0};

  model.UpdateAndBlend(modeled, PeriodWithQueueP99(100));
  EXPECT_TRUE(model.signals().queue_trend.measured);
  EXPECT_EQ(model.signals().queue_trend.rising_periods, 0);

  int last_rising = 0;
  for (int64_t q = 200; q <= 500; q += 100) {
    model.UpdateAndBlend(modeled, PeriodWithQueueP99(q));
    EXPECT_GT(model.signals().queue_trend.rising_periods, last_rising);
    EXPECT_GT(model.signals().queue_trend.slope_us_per_period, 0.0);
    last_rising = model.signals().queue_trend.rising_periods;
  }
  EXPECT_GE(last_rising, 3);

  // A flat (within epsilon) period resets the streak.
  model.UpdateAndBlend(modeled, PeriodWithQueueP99(500));
  EXPECT_EQ(model.signals().queue_trend.rising_periods, 0);
}

TEST(MeasuredCostModelTest, PerGroupQueueDelaySeedsFromFirstSample) {
  MeasuredCostOptions options;
  options.ewma_alpha = 0.5;
  MeasuredCostModel model(options);
  LatencyPeriodStats period = PeriodWithService({100.0, 100.0});
  period.group_service[0].queue_sum_us = 400.0;
  period.group_service[0].queue_batches = 2;
  const std::vector<double> modeled = {50.0, 50.0};
  model.UpdateAndBlend(modeled, period);
  // First measured period SEEDS the estimate (200), it must not blend
  // against the zero initial value (which would report 100).
  EXPECT_DOUBLE_EQ(model.signals().group_queue_delay_us[0], 200.0);
  model.UpdateAndBlend(modeled, period);
  EXPECT_DOUBLE_EQ(model.signals().group_queue_delay_us[0], 200.0);
  period.group_service[0].queue_sum_us = 800.0;
  model.UpdateAndBlend(modeled, period);
  EXPECT_DOUBLE_EQ(model.signals().group_queue_delay_us[0], 300.0);
}

TEST(MeasuredCostModelTest, PerGroupQueueDelayTracksMeans) {
  MeasuredCostOptions options;
  options.ewma_alpha = 1.0;
  MeasuredCostModel model(options);
  LatencyPeriodStats period = PeriodWithService({100.0, 100.0});
  period.group_service[0].queue_sum_us = 900.0;
  period.group_service[0].queue_batches = 3;
  const std::vector<double> modeled = {50.0, 50.0};
  model.UpdateAndBlend(modeled, period);
  ASSERT_EQ(model.signals().group_queue_delay_us.size(), 2u);
  EXPECT_DOUBLE_EQ(model.signals().group_queue_delay_us[0], 300.0);
  // Group 1 had no delivered batches: its estimate stays put.
  EXPECT_DOUBLE_EQ(model.signals().group_queue_delay_us[1], 0.0);
}

}  // namespace
}  // namespace albic::engine
