// The bounded SPSC staging queue is the backpressure mechanism of sharded
// ingestion: it must preserve FIFO order, enforce its capacity bound, block
// a producer on a full queue until the consumer makes room, and unblock the
// producer on Close without losing already-queued items.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/spsc_queue.h"

namespace albic::engine {
namespace {

TEST(SpscQueueTest, FifoWithinCapacity) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(int(i)));
  EXPECT_FALSE(q.TryPush(99)) << "queue over capacity";
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));
  EXPECT_EQ(q.blocked_pushes(), 0);
}

TEST(SpscQueueTest, WrapAroundKeepsOrder) {
  SpscQueue<int> q(3);
  int out = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.TryPush(int(i)));
    if (i % 2 == 1) {  // drain two, keeping the queue partially full
      ASSERT_TRUE(q.TryPop(&out));
      EXPECT_EQ(out, i - 1);
      ASSERT_TRUE(q.TryPop(&out));
      EXPECT_EQ(out, i);
    }
  }
}

TEST(SpscQueueTest, PushBlocksUntilConsumerMakesRoom) {
  SpscQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));  // full

  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // must block until the pop below
    second_pushed.store(true);
  });

  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());

  int out = -1;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_GE(q.blocked_pushes(), 1) << "the full-queue stall must be counted";
}

TEST(SpscQueueTest, CloseUnblocksProducerAndKeepsQueuedItems) {
  SpscQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(7));

  std::atomic<bool> push_returned{false};
  bool push_result = true;
  std::thread producer([&] {
    push_result = q.Push(8);  // blocked: queue is full
    push_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(push_returned.load());

  q.Close();
  producer.join();
  EXPECT_FALSE(push_result) << "Push into a closed queue must fail";

  // The item queued before Close survives; afterwards the queue is drained.
  EXPECT_FALSE(q.Drained());
  int out = -1;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(q.Drained());
  EXPECT_FALSE(q.TryPush(9));
}

TEST(SpscQueueTest, ConcurrentProducerConsumerTransfersEverythingInOrder) {
  constexpr int kItems = 20000;
  SpscQueue<int> q(8);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(int(i)));
    q.Close();
  });
  int expected = 0;
  int out = -1;
  while (!q.Drained()) {
    if (q.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

}  // namespace
}  // namespace albic::engine
