// The sharded source subsystem's contracts: a 1-shard run reproduces the
// legacy InjectBatch ingestion bit-identically (same EnginePeriodStats,
// same operator outputs) on the wiki pipeline; multi-shard runs lose no
// tuples and keep per-(shard, key-group) order, including across a
// migration started while shard batches are in flight; the bounded staging
// queues actually backpressure the producers; and per-shard offered load is
// folded into EnginePeriodStats.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "engine/local_engine.h"
#include "engine/sharded_source.h"
#include "engine/source.h"
#include "ops/geohash.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::ExecutionMode;
using engine::KeyGroupId;
using engine::Tuple;

constexpr int kNodes = 4;
constexpr int kGroups = 8;

struct Pipeline {
  engine::Topology topo;
  engine::Cluster cluster{kNodes};
  ops::GeoHashOperator geohash{kGroups, 256};
  ops::WindowedTopKOperator topk{kGroups, 64};
  ops::WindowedTopKOperator global{kGroups, 64, ops::TopKCountMode::kSumNum};
  std::unique_ptr<engine::LocalEngine> engine;

  explicit Pipeline(engine::LocalEngineOptions opts) {
    topo.AddOperator("geohash", kGroups, 1 << 14);
    topo.AddOperator("topk", kGroups, 1 << 14);
    topo.AddOperator("global", kGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kNodes);
    }
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global}, opts);
  }

  std::map<uint64_t, int64_t> GlobalCounts() const {
    std::map<uint64_t, int64_t> out;
    for (int g = 0; g < kGroups; ++g) {
      for (const auto& [article, count] : global.last_window_top(g)) {
        out[article] += count;
      }
    }
    return out;
  }
};

void ExpectStatsEqual(const engine::EnginePeriodStats& a,
                      const engine::EnginePeriodStats& b) {
  ASSERT_EQ(a.group_work.size(), b.group_work.size());
  for (size_t g = 0; g < a.group_work.size(); ++g) {
    EXPECT_EQ(a.group_work[g], b.group_work[g]) << "group " << g;
  }
  ASSERT_EQ(a.node_work.size(), b.node_work.size());
  for (size_t n = 0; n < a.node_work.size(); ++n) {
    EXPECT_EQ(a.node_work[n], b.node_work[n]) << "node " << n;
  }
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.tuples_buffered, b.tuples_buffered);
  EXPECT_EQ(a.migration_pause_us, b.migration_pause_us);
  EXPECT_EQ(a.shard_ingested, b.shard_ingested);
  ASSERT_EQ(a.comm.num_groups(), b.comm.num_groups());
  for (KeyGroupId from = 0; from < a.comm.num_groups(); ++from) {
    for (KeyGroupId to = 0; to < a.comm.num_groups(); ++to) {
      EXPECT_EQ(a.comm.Rate(from, to), b.comm.Rate(from, to))
          << "comm " << from << " -> " << to;
    }
  }
}

std::vector<Tuple> WikiStream(int tuples) {
  workload::WikipediaEditStream edits(300, 101, /*rate_per_second=*/400.0);
  std::vector<Tuple> stream;
  stream.reserve(static_cast<size_t>(tuples));
  for (int i = 0; i < tuples; ++i) stream.push_back(edits.Next());
  return stream;
}

// --- the num_shards = 1 parity contract -----------------------------------

TEST(ShardedSourceTest, OneShardMatchesLegacyInjectBatchOnWikiPipeline) {
  constexpr int kTuples = 70000;  // > 2 one-minute windows at 400 tuples/s
  const std::vector<Tuple> stream = WikiStream(kTuples);

  engine::LocalEngineOptions opts;
  opts.mode = ExecutionMode::kBatched;
  opts.num_workers = 1;

  // Reference: the legacy bulk-ingestion path, one InjectBatch call.
  Pipeline legacy(opts);
  ASSERT_TRUE(
      legacy.engine->InjectBatch(0, stream.data(), stream.size()).ok());
  legacy.engine->Flush();

  // Same stream through the sharded subsystem with a single shard.
  Pipeline sharded(opts);
  engine::VectorSource source(stream.data(), stream.size());
  engine::EngineShardSink sink(sharded.engine.get());
  engine::ShardedSourceRunner runner;
  const auto report = runner.Run({&source}, 0, kGroups, &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_tuples, kTuples);
  ASSERT_EQ(report->shards.size(), 1u);
  EXPECT_EQ(report->shards[0].blocked_pushes, 0)
      << "the inline single-shard path never queues";
  sharded.engine->Flush();

  engine::EnginePeriodStats legacy_stats = legacy.engine->HarvestPeriod();
  engine::EnginePeriodStats sharded_stats = sharded.engine->HarvestPeriod();
  ExpectStatsEqual(legacy_stats, sharded_stats);
  // Offered load: every source tuple counted, on shard 0, in both paths.
  ASSERT_EQ(sharded_stats.shard_ingested.size(), 1u);
  EXPECT_EQ(sharded_stats.shard_ingested[0], kTuples);

  // The job answer must be identical too.
  const std::map<uint64_t, int64_t> a = legacy.GlobalCounts();
  const std::map<uint64_t, int64_t> b = sharded.GlobalCounts();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ShardedSourceTest, OneShardMatchesTupleAtATimeReferenceSemantics) {
  // Transitivity check against the original reference path: per-tuple
  // Inject on a tuple-at-a-time engine.
  constexpr int kTuples = 40000;
  const std::vector<Tuple> stream = WikiStream(kTuples);

  Pipeline reference((engine::LocalEngineOptions()));
  for (const Tuple& t : stream) {
    ASSERT_TRUE(reference.engine->Inject(0, t).ok());
  }

  engine::LocalEngineOptions batched;
  batched.mode = ExecutionMode::kBatched;
  Pipeline sharded(batched);
  engine::VectorSource source(stream.data(), stream.size());
  engine::EngineShardSink sink(sharded.engine.get());
  engine::ShardedSourceRunner runner;
  ASSERT_TRUE(runner.Run({&source}, 0, kGroups, &sink).ok());
  sharded.engine->Flush();

  ExpectStatsEqual(reference.engine->HarvestPeriod(),
                   sharded.engine->HarvestPeriod());
  EXPECT_EQ(reference.GlobalCounts(), sharded.GlobalCounts());
}

// --- multi-shard: ordering, backpressure, migration safety ----------------

/// Records arrival order per group; tuples encode (shard, sequence).
class RecordingOperator : public engine::StreamOperator {
 public:
  explicit RecordingOperator(int num_groups) : seen_(num_groups) {}

  void Process(const Tuple& tuple, int group_index,
               engine::Emitter* out) override {
    (void)out;
    seen_[group_index].push_back(tuple);
  }

  const std::vector<std::vector<Tuple>>& seen() const { return seen_; }

 private:
  std::vector<std::vector<Tuple>> seen_;
};

/// Delegates to the engine sink; triggers a migration mid-ingestion and
/// slows the first deliveries down so the bounded queues must backpressure.
class MigratingSlowSink : public engine::ShardSink {
 public:
  MigratingSlowSink(engine::LocalEngine* eng, KeyGroupId group,
                    engine::NodeId target)
      : inner_(eng), engine_(eng), group_(group), target_(target) {}

  Status IngestChunk(engine::OperatorId op, const Tuple* tuples,
                     size_t count) override {
    return inner_.IngestChunk(op, tuples, count);
  }

  Status IngestRouted(engine::OperatorId op, int shard, int group,
                      const Tuple* tuples, size_t count,
                      int64_t ingest_wall_ns) override {
    ++calls_;
    if (calls_ <= 30) {
      // Slow consumer: the producers outrun the capacity-1 queues.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (calls_ == 5) {
      ALBIC_RETURN_NOT_OK(engine_->StartMigration(group_, target_));
    }
    Status st =
        inner_.IngestRouted(op, shard, group, tuples, count, ingest_wall_ns);
    if (st.ok() && calls_ == 40) {
      st = engine_->FinishMigration(group_).status();
    }
    return st;
  }

  int calls() const { return calls_; }

 private:
  engine::EngineShardSink inner_;
  engine::LocalEngine* engine_;
  KeyGroupId group_;
  engine::NodeId target_;
  int calls_ = 0;
};

TEST(ShardedSourceTest, MultiShardNoLossInOrderAcrossMidIngestionMigration) {
  constexpr int kShards = 2;
  constexpr int kPerShard = 6400;
  engine::Topology topo;
  topo.AddOperator("rec", 4, 1 << 10);
  engine::Cluster cluster(2);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % 2);
  }
  RecordingOperator rec(4);
  engine::LocalEngineOptions opts;
  opts.mode = ExecutionMode::kBatched;
  opts.window_every_us = 0;
  // Small drain threshold so the pipeline drains (and therefore delivers
  // into the migrating group, which must buffer) while the migration from
  // sink call 5 to sink call 40 is open.
  opts.max_batch_tuples = 256;
  engine::LocalEngine eng(&topo, &cluster, assign,
                          std::vector<engine::StreamOperator*>{&rec}, opts);

  // Shard s produces (shard s, seq i) with keys spreading over groups.
  std::vector<std::vector<Tuple>> shard_tuples(kShards);
  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < kPerShard; ++i) {
      Tuple t;
      t.key = static_cast<uint64_t>(i * 1315423911u + s * 2654435761u);
      t.aux = static_cast<uint64_t>(s);
      t.num = i;
      shard_tuples[s].push_back(t);
    }
  }
  std::vector<engine::VectorSource> sources;
  sources.reserve(kShards);
  std::vector<engine::Source*> shards;
  for (int s = 0; s < kShards; ++s) {
    sources.emplace_back(shard_tuples[s].data(), shard_tuples[s].size());
    shards.push_back(&sources.back());
  }

  // Group 0 migrates from node 0 to node 1 while shard batches are in
  // flight; tuples delivered meanwhile must buffer, not drop.
  MigratingSlowSink sink(&eng, /*group=*/0, /*target=*/1);
  engine::ShardedSourceOptions sopts;
  sopts.chunk_tuples = 64;
  sopts.queue_capacity = 1;
  engine::ShardedSourceRunner runner(sopts);
  const auto report = runner.Run(shards, 0, topo.op(0).num_key_groups, &sink);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  eng.Flush();

  EXPECT_EQ(report->total_tuples, kShards * kPerShard);
  int64_t stalls = 0;
  for (const auto& s : report->shards) stalls += s.blocked_pushes;
  EXPECT_GT(stalls, 0) << "capacity-1 queues against a slowed consumer must "
                          "have backpressured";

  // No loss: every produced tuple was processed exactly once.
  engine::EnginePeriodStats stats = eng.HarvestPeriod();
  EXPECT_EQ(stats.tuples_processed, kShards * kPerShard);
  EXPECT_GT(stats.tuples_buffered, 0) << "the migration must have buffered "
                                         "in-flight tuples";
  ASSERT_EQ(stats.shard_ingested.size(), static_cast<size_t>(kShards));
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(stats.shard_ingested[s], kPerShard) << "shard " << s;
  }
  EXPECT_EQ(eng.assignment().node_of(0), 1) << "migration must have landed";

  // Per-(shard, group) FIFO: within every group, each shard's sequence
  // numbers arrive in increasing order, and nothing is duplicated.
  int64_t recorded = 0;
  for (const std::vector<Tuple>& group : rec.seen()) {
    std::vector<double> last(kShards, -1.0);
    for (const Tuple& t : group) {
      const int s = static_cast<int>(t.aux);
      EXPECT_LT(last[s], t.num) << "shard " << s << " reordered";
      last[s] = t.num;
      ++recorded;
    }
  }
  EXPECT_EQ(recorded, kShards * kPerShard);
}

TEST(ShardedSourceTest, SinkErrorAbortsRunAndUnblocksProducers) {
  class FailingSink : public engine::ShardSink {
   public:
    Status IngestChunk(engine::OperatorId, const Tuple*, size_t) override {
      return Status::Internal("sink down");
    }
    Status IngestRouted(engine::OperatorId, int, int, const Tuple*, size_t,
                        int64_t) override {
      return Status::Internal("sink down");
    }
  };

  std::vector<Tuple> tuples(10000);
  for (size_t i = 0; i < tuples.size(); ++i) {
    tuples[i].key = static_cast<uint64_t>(i);
  }
  std::vector<engine::VectorSource> sources;
  sources.reserve(3);
  std::vector<engine::Source*> shards;
  for (int s = 0; s < 3; ++s) {
    sources.emplace_back(tuples.data(), tuples.size());
    shards.push_back(&sources.back());
  }
  FailingSink sink;
  engine::ShardedSourceOptions sopts;
  sopts.chunk_tuples = 32;
  sopts.queue_capacity = 1;
  engine::ShardedSourceRunner runner(sopts);
  // Must return the sink's error and terminate (producers unblocked via
  // queue Close) instead of deadlocking on the full queues.
  const auto report = runner.Run(shards, 0, 4, &sink);
  EXPECT_FALSE(report.ok());
}

TEST(ShardedSourceTest, RunValidatesArguments) {
  engine::ShardedSourceRunner runner;
  engine::VectorSource source(nullptr, 0);
  class NullSink : public engine::ShardSink {
   public:
    Status IngestChunk(engine::OperatorId, const Tuple*, size_t) override {
      return Status::OK();
    }
    Status IngestRouted(engine::OperatorId, int, int, const Tuple*, size_t,
                        int64_t) override {
      return Status::OK();
    }
  };
  NullSink sink;
  EXPECT_FALSE(runner.Run({}, 0, 4, &sink).ok());
  EXPECT_FALSE(runner.Run({&source}, 0, 0, &sink).ok());
  EXPECT_FALSE(runner.Run({&source}, 0, 4, nullptr).ok());
  EXPECT_FALSE(runner.Run({&source, nullptr}, 0, 4, &sink).ok());
  // An empty source is a valid no-op run.
  const auto report = runner.Run({&source}, 0, 4, &sink);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_tuples, 0);
}

}  // namespace
}  // namespace albic
