// Sources must be replayable: a Reset restarts the identical sequence, a
// FileSource survives re-reading, and chunk boundaries never change what is
// produced.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "engine/source.h"

namespace albic::engine {
namespace {

std::vector<Tuple> DrainAll(Source* src, size_t chunk) {
  std::vector<Tuple> out;
  std::vector<Tuple> buf(chunk);
  for (;;) {
    const size_t n = src->FillChunk(buf.data(), chunk);
    if (n == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + n);
  }
  return out;
}

bool SameTuples(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].ts != b[i].ts || a[i].num != b[i].num ||
        a[i].aux != b[i].aux) {
      return false;
    }
  }
  return true;
}

TEST(SourceTest, VectorSourceReplaysIdenticallyAcrossChunkSizes) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 1000; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i * 37);
    t.ts = i;
    t.num = i * 0.5;
    tuples.push_back(t);
  }
  VectorSource src(tuples);
  EXPECT_EQ(src.size(), 1000u);
  const std::vector<Tuple> first = DrainAll(&src, 64);
  EXPECT_TRUE(SameTuples(first, tuples));
  EXPECT_EQ(src.FillChunk(nullptr, 0), 0u);  // exhausted stays exhausted
  src.Reset();
  const std::vector<Tuple> second = DrainAll(&src, 7);  // different chunking
  EXPECT_TRUE(SameTuples(second, tuples));
}

TEST(SourceTest, SyntheticSourceResetRestartsTheGenerator) {
  auto factory = [] {
    auto counter = std::make_shared<int>(0);
    return [counter] {
      Tuple t;
      t.key = static_cast<uint64_t>(*counter * 11);
      t.ts = (*counter)++;
      return t;
    };
  };
  SyntheticSource src(factory, 500);
  const std::vector<Tuple> first = DrainAll(&src, 33);
  ASSERT_EQ(first.size(), 500u);
  EXPECT_EQ(first.back().ts, 499);
  src.Reset();
  const std::vector<Tuple> second = DrainAll(&src, 128);
  EXPECT_TRUE(SameTuples(first, second));
}

TEST(SourceTest, FileSourceParsesAndReplays) {
  const std::string path = ::testing::TempDir() + "/albic_source_test.tuples";
  {
    std::ofstream out(path);
    out << "# key ts num aux\n"
        << "42 1000 1.5 7\n"
        << "\n"
        << "43 2000\n"       // missing trailing fields default to 0
        << "  44 3000 2.5 9\n";
  }
  auto opened = FileSource::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  FileSource& src = *opened;
  ASSERT_EQ(src.size(), 3u);
  const std::vector<Tuple> tuples = DrainAll(&src, 2);
  ASSERT_EQ(tuples.size(), 3u);
  EXPECT_EQ(tuples[0].key, 42u);
  EXPECT_EQ(tuples[0].ts, 1000);
  EXPECT_DOUBLE_EQ(tuples[0].num, 1.5);
  EXPECT_EQ(tuples[0].aux, 7u);
  EXPECT_EQ(tuples[1].key, 43u);
  EXPECT_EQ(tuples[1].ts, 2000);
  EXPECT_DOUBLE_EQ(tuples[1].num, 0.0);
  EXPECT_EQ(tuples[2].key, 44u);
  src.Reset();
  EXPECT_TRUE(SameTuples(DrainAll(&src, 100), tuples));
  std::remove(path.c_str());
}

TEST(SourceTest, FileSourceReportsMissingFile) {
  auto opened = FileSource::Open("/nonexistent/albic.tuples");
  EXPECT_FALSE(opened.ok());
}

}  // namespace
}  // namespace albic::engine
