#include "engine/stats.h"

#include <gtest/gtest.h>

namespace albic::engine {
namespace {

PeriodStats Make(int period, double total_load, int migrations,
                 double pause) {
  PeriodStats p;
  p.period = period;
  p.total_load = total_load;
  p.migrations = migrations;
  p.migration_pause_seconds = pause;
  return p;
}

TEST(StatsCollectorTest, LoadIndexRelativeToBaseline) {
  StatsCollector stats(/*baseline_periods=*/2);
  stats.Record(Make(0, 100, 0, 0));
  stats.Record(Make(1, 120, 0, 0));  // baseline avg = 110
  stats.Record(Make(2, 55, 0, 0));
  EXPECT_DOUBLE_EQ(stats.LoadIndexAt(0), 100.0 / 110.0 * 100.0);
  EXPECT_DOUBLE_EQ(stats.LoadIndexAt(2), 50.0);
}

TEST(StatsCollectorTest, LoadIndexWithZeroBaselineIs100) {
  StatsCollector stats(1);
  stats.Record(Make(0, 0, 0, 0));
  EXPECT_DOUBLE_EQ(stats.LoadIndexAt(0), 100.0);
}

TEST(StatsCollectorTest, CumulativeCounters) {
  StatsCollector stats(1);
  stats.Record(Make(0, 1, 3, 1.0));
  stats.Record(Make(1, 1, 5, 0.5));
  stats.Record(Make(2, 1, 0, 0.0));
  EXPECT_EQ(stats.CumulativeMigrations(0), 3);
  EXPECT_EQ(stats.CumulativeMigrations(2), 8);
  EXPECT_DOUBLE_EQ(stats.CumulativePauseSeconds(1), 1.5);
}

TEST(StatsCollectorTest, MeanLoadDistance) {
  StatsCollector stats(1);
  EXPECT_DOUBLE_EQ(stats.MeanLoadDistance(), 0.0);
  PeriodStats a = Make(0, 1, 0, 0);
  a.load_distance = 2.0;
  PeriodStats b = Make(1, 1, 0, 0);
  b.load_distance = 4.0;
  stats.Record(a);
  stats.Record(b);
  EXPECT_DOUBLE_EQ(stats.MeanLoadDistance(), 3.0);
}

}  // namespace
}  // namespace albic::engine
