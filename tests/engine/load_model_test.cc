#include "engine/load_model.h"

#include <gtest/gtest.h>

namespace albic::engine {
namespace {

struct Fixture {
  Topology topo;
  Cluster cluster{2};
  Assignment assign;

  Fixture() {
    topo.AddOperator("a", 2);
    topo.AddOperator("b", 2);
    EXPECT_TRUE(
        topo.AddStream(0, 1, PartitioningPattern::kOneToOne).ok());
    assign = Assignment(4);
    // a0,b0 -> node 0; a1,b1 -> node 1.
    assign.set_node(0, 0);
    assign.set_node(1, 1);
    assign.set_node(2, 0);
    assign.set_node(3, 1);
  }
};

TEST(LoadModelTest, ProcessingLoadsSumPerNode) {
  Fixture f;
  LoadModel model(CostModel{});
  NodeLoads loads = model.ComputeNodeLoads(f.topo, {10, 20, 5, 15}, nullptr,
                                           f.assign, f.cluster);
  EXPECT_DOUBLE_EQ(loads.cpu[0], 15.0);
  EXPECT_DOUBLE_EQ(loads.cpu[1], 35.0);
  EXPECT_EQ(loads.bottleneck, Resource::kCpu);
}

TEST(LoadModelTest, SerdeChargedToBothEndpointsOnlyWhenRemote) {
  Fixture f;
  CostModel cost;
  cost.serde_cpu_per_rate = 1.0;
  cost.network_per_rate = 0.5;
  LoadModel model(cost);
  CommMatrix comm(4);
  comm.Add(0, 2, 4.0);  // a0 -> b0: same node, free
  comm.Add(1, 2, 6.0);  // a1 (node1) -> b0 (node0): remote
  NodeLoads loads = model.ComputeNodeLoads(f.topo, {0, 0, 0, 0}, &comm,
                                           f.assign, f.cluster);
  EXPECT_DOUBLE_EQ(loads.cpu[0], 6.0);   // deserialization at receiver
  EXPECT_DOUBLE_EQ(loads.cpu[1], 6.0);   // serialization at sender
  EXPECT_DOUBLE_EQ(loads.network[0], 3.0);
  EXPECT_DOUBLE_EQ(loads.network[1], 3.0);
}

TEST(LoadModelTest, CapacityNormalization) {
  Topology topo;
  topo.AddOperator("a", 2);
  Cluster cluster;
  cluster.AddNode(1.0);
  cluster.AddNode(2.0);  // twice as fast
  Assignment assign(2);
  assign.set_node(0, 0);
  assign.set_node(1, 1);
  LoadModel model(CostModel{});
  NodeLoads loads =
      model.ComputeNodeLoads(topo, {30, 30}, nullptr, assign, cluster);
  EXPECT_DOUBLE_EQ(loads.cpu[0], 30.0);
  EXPECT_DOUBLE_EQ(loads.cpu[1], 15.0);  // same work, double capacity
}

TEST(LoadModelTest, BottleneckPicksGreatestTotalUsage) {
  Fixture f;
  CostModel cost;
  cost.serde_cpu_per_rate = 0.01;
  cost.network_per_rate = 10.0;  // network dominates
  LoadModel model(cost);
  CommMatrix comm(4);
  comm.Add(0, 3, 5.0);  // remote
  NodeLoads loads = model.ComputeNodeLoads(f.topo, {1, 1, 1, 1}, &comm,
                                           f.assign, f.cluster);
  EXPECT_EQ(loads.bottleneck, Resource::kNetwork);
  EXPECT_GT(loads.bottleneck_loads()[0], 0.0);
}

TEST(LoadModelTest, MemoryResourceFromState) {
  Fixture f;
  CostModel cost;
  cost.memory_per_byte = 1.0;  // absurd scale to force memory bottleneck
  LoadModel model(cost);
  NodeLoads loads = model.ComputeNodeLoads(f.topo, {1, 1, 1, 1}, nullptr,
                                           f.assign, f.cluster);
  EXPECT_EQ(loads.bottleneck, Resource::kMemory);
  EXPECT_DOUBLE_EQ(loads.memory[0], 2.0 * (1 << 20));
}

TEST(LoadModelTest, GroupLoadsIncludeSerdeShares) {
  Fixture f;
  CostModel cost;
  cost.serde_cpu_per_rate = 1.0;
  LoadModel model(cost);
  CommMatrix comm(4);
  comm.Add(0, 2, 4.0);  // local: no serde
  comm.Add(1, 2, 6.0);  // remote
  std::vector<double> gl =
      model.ComputeGroupLoads(f.topo, {10, 10, 10, 10}, &comm, f.assign);
  EXPECT_DOUBLE_EQ(gl[0], 10.0);
  EXPECT_DOUBLE_EQ(gl[1], 16.0);  // sender side
  EXPECT_DOUBLE_EQ(gl[2], 16.0);  // receiver side
  EXPECT_DOUBLE_EQ(gl[3], 10.0);
}

TEST(LoadModelTest, LoadDistanceUsesPaperMean) {
  // Mean sums over ALL active nodes but divides by |A| (Table 2).
  Cluster cluster(3);
  ASSERT_TRUE(cluster.MarkForRemoval(2).ok());
  // loads: A = {40, 60}, B = {20}. mean = 120 / 2 = 60.
  std::vector<double> loads = {40, 60, 20};
  EXPECT_DOUBLE_EQ(MeanLoad(loads, cluster), 60.0);
  EXPECT_DOUBLE_EQ(LoadDistance(loads, cluster), 20.0);  // |40-60|
}

TEST(LoadModelTest, CollocationPercent) {
  Fixture f;
  CommMatrix comm(4);
  comm.Add(0, 2, 30.0);  // local
  comm.Add(1, 2, 10.0);  // remote
  EXPECT_DOUBLE_EQ(CollocationPercent(comm, f.assign), 75.0);
  CommMatrix empty(4);
  EXPECT_DOUBLE_EQ(CollocationPercent(empty, f.assign), 0.0);
}

TEST(LoadModelTest, ResourceNames) {
  EXPECT_STREQ(ResourceToString(Resource::kCpu), "cpu");
  EXPECT_STREQ(ResourceToString(Resource::kNetwork), "network");
  EXPECT_STREQ(ResourceToString(Resource::kMemory), "memory");
}

}  // namespace
}  // namespace albic::engine
