#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <numeric>

#include "engine/load_model.h"

namespace albic::workload {
namespace {

TEST(SyntheticTest, EvenAllocationAndLoadScale) {
  SyntheticOptions opts;
  opts.nodes = 10;
  opts.key_groups = 100;
  opts.operators = 5;
  opts.mean_node_load = 50.0;
  opts.varies = 0.0;
  SyntheticScenario s = BuildSyntheticScenario(opts);
  EXPECT_EQ(s.topology.num_key_groups(), 100);
  EXPECT_EQ(s.topology.num_operators(), 5);
  // Every node holds exactly 10 groups.
  for (engine::NodeId n = 0; n < 10; ++n) {
    EXPECT_EQ(s.assignment.count_on(n), 10);
  }
  // Node loads near 50 (+-5% per group noise averages out).
  for (engine::NodeId n = 0; n < 10; ++n) {
    double load = 0.0;
    for (engine::KeyGroupId g : s.assignment.groups_on(n)) {
      load += s.group_loads[g];
    }
    EXPECT_NEAR(load, 50.0, 4.0);
  }
}

TEST(SyntheticTest, VariesShiftsSomeNodesBothWays) {
  SyntheticOptions opts;
  opts.nodes = 20;
  opts.key_groups = 400;
  opts.operators = 10;
  opts.varies = 40.0;
  opts.seed = 9;
  SyntheticScenario s = BuildSyntheticScenario(opts);
  std::vector<double> node_loads(20, 0.0);
  for (engine::KeyGroupId g = 0; g < 400; ++g) {
    node_loads[s.assignment.node_of(g)] += s.group_loads[g];
  }
  const double max = *std::max_element(node_loads.begin(), node_loads.end());
  const double min = *std::min_element(node_loads.begin(), node_loads.end());
  // Half the shifted nodes go up by ~20, half down by ~20.
  EXPECT_GT(max, 62.0);
  EXPECT_LT(min, 38.0);
  // Load distance of the perturbed scenario is substantial.
  EXPECT_GT(engine::LoadDistance(node_loads, s.cluster), 10.0);
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticOptions opts;
  opts.varies = 30.0;
  SyntheticScenario a = BuildSyntheticScenario(opts);
  SyntheticScenario b = BuildSyntheticScenario(opts);
  EXPECT_EQ(a.group_loads, b.group_loads);
  opts.seed = 43;
  SyntheticScenario c = BuildSyntheticScenario(opts);
  EXPECT_NE(a.group_loads, c.group_loads);
}

TEST(SyntheticTest, OverloadNodesHitsExactly100) {
  SyntheticOptions opts;
  opts.nodes = 5;
  opts.key_groups = 50;
  opts.operators = 5;
  SyntheticScenario s = BuildSyntheticScenario(opts);
  OverloadNodes(&s, 2);
  for (engine::NodeId n = 0; n < 2; ++n) {
    double load = 0.0;
    for (engine::KeyGroupId g : s.assignment.groups_on(n)) {
      load += s.group_loads[g];
    }
    EXPECT_NEAR(load, 100.0, 1e-9);
  }
}

TEST(SyntheticTest, LoadsNonNegative) {
  SyntheticOptions opts;
  opts.varies = 100.0;
  SyntheticScenario s = BuildSyntheticScenario(opts);
  for (double l : s.group_loads) EXPECT_GE(l, 0.0);
}

}  // namespace
}  // namespace albic::workload
