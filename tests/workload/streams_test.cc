#include "workload/streams.h"

#include <gtest/gtest.h>

#include <map>

namespace albic::workload {
namespace {

TEST(AirlineFlightStreamTest, TimestampsAdvanceAndFieldsInRange) {
  AirlineFlightStream s(100, 20, 3);
  int64_t last_ts = -1;
  for (int i = 0; i < 2000; ++i) {
    engine::Tuple t = s.Next();
    EXPECT_GE(t.ts, last_ts);
    last_ts = t.ts;
    EXPECT_LT(t.key, 100u);
    EXPECT_LT(t.aux, 400u);
    EXPECT_GE(t.num, 0.0);
    // Route never maps an airport to itself.
    EXPECT_NE(t.aux / 20, t.aux % 20);
  }
}

TEST(AirlineFlightStreamTest, DelaysMixOnTimeAndLate) {
  AirlineFlightStream s(50, 10, 5);
  int on_time = 0, late = 0;
  for (int i = 0; i < 5000; ++i) {
    s.Next().num == 0.0 ? ++on_time : ++late;
  }
  EXPECT_GT(on_time, 2000);
  EXPECT_GT(late, 1000);
}

TEST(AirlineFlightStreamTest, PlanePopularityIsSkewed) {
  AirlineFlightStream s(200, 10, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[s.Next().key];
  int max = 0;
  for (const auto& [plane, c] : counts) max = std::max(max, c);
  EXPECT_GT(max, 20000 / 200 * 2);  // top plane well above uniform share
}

TEST(WikipediaEditStreamTest, ArticleSkewAndPayloads) {
  WikipediaEditStream s(1000, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    engine::Tuple t = s.Next();
    EXPECT_GE(t.key, 1u);  // 1-based: 0 is the no-aux sentinel
    ++counts[t.key];
    EXPECT_GT(t.num, 0.0);
  }
  EXPECT_GT(counts[1], 20000 / 1000 * 3);  // rank-0 article is hot
}

TEST(WeatherStreamTest, RoundRobinStationsDayByDay) {
  WeatherModel model(WeatherOptions{5, 2});
  WeatherStream s(&model);
  for (int day = 0; day < 3; ++day) {
    for (int st = 0; st < 5; ++st) {
      engine::Tuple t = s.Next();
      EXPECT_EQ(t.key, static_cast<uint64_t>(st));
      EXPECT_DOUBLE_EQ(t.num, model.PrecipitationAt(st, day));
      EXPECT_EQ(t.aux, static_cast<uint64_t>(model.RainScoreDecade(st, day)));
    }
  }
}

}  // namespace
}  // namespace albic::workload
