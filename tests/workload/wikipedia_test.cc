#include "workload/wikipedia.h"

#include <gtest/gtest.h>

#include <numeric>

#include "engine/load_model.h"

namespace albic::workload {
namespace {

WikipediaOptions Small() {
  WikipediaOptions opts;
  opts.nodes = 4;
  opts.groups_per_op = 20;
  opts.total_load = 200.0;
  opts.seed = 2;
  return opts;
}

TEST(WikipediaTest, TopologyIsRealJob1) {
  WikipediaWorkload wl(Small());
  EXPECT_EQ(wl.topology().num_operators(), 3);
  EXPECT_EQ(wl.topology().num_key_groups(), 60);
  EXPECT_EQ(wl.topology().op(wl.geohash_op()).name, "geohash");
  EXPECT_EQ(wl.topology().edges().size(), 2u);
}

TEST(WikipediaTest, RatesFluctuateAcrossPeriods) {
  WikipediaWorkload wl(Small());
  double lo = 1e18, hi = -1e18;
  for (int p = 0; p < 48; ++p) {
    const double f = wl.RateFactor(p);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_LT(lo, 0.95);
  EXPECT_GT(hi, 1.1);
}

TEST(WikipediaTest, LoadsTrackRateFactor) {
  // The ratio of total load between two periods follows the rate factor
  // ratio (absolute totals also include time-varying merge work, so only
  // the ratio is a stable property).
  WikipediaWorkload wl(Small());
  wl.AdvancePeriod(3);
  const double total3 = std::accumulate(wl.group_proc_loads().begin(),
                                        wl.group_proc_loads().end(), 0.0);
  wl.AdvancePeriod(9);
  const double total9 = std::accumulate(wl.group_proc_loads().begin(),
                                        wl.group_proc_loads().end(), 0.0);
  const double expected = wl.RateFactor(3) / wl.RateFactor(9);
  EXPECT_NEAR(total3 / total9, expected, 0.30 * expected);
}

TEST(WikipediaTest, FullPartitioningMeansLowCollocationOpportunity) {
  // The even full-partitioning job: any assignment's local fraction is near
  // 1/nodes — the ~5% result of §5.4.
  WikipediaWorkload wl(Small());
  engine::Assignment assign = wl.MakeInitialAssignment();
  const double pct = engine::CollocationPercent(*wl.comm(), assign);
  EXPECT_LT(pct, 40.0);
  EXPECT_GT(pct, 5.0);  // 4 nodes -> ~25%
}

TEST(WikipediaTest, TopKLoadSkewedByArticlePopularity) {
  WikipediaWorkload wl(Small());
  wl.AdvancePeriod(1);
  const auto& loads = wl.group_proc_loads();
  const engine::KeyGroupId tk0 = wl.topology().first_group(wl.topk_op());
  double min = 1e18, max = -1e18;
  for (int i = 0; i < 20; ++i) {
    min = std::min(min, loads[tk0 + i]);
    max = std::max(max, loads[tk0 + i]);
  }
  EXPECT_GT(max, 2.0 * min);  // Zipf-driven skew
}

TEST(WikipediaTest, DeterministicPerSeedAndPeriod) {
  WikipediaWorkload a(Small()), b(Small());
  a.AdvancePeriod(7);
  b.AdvancePeriod(7);
  EXPECT_EQ(a.group_proc_loads(), b.group_proc_loads());
}

}  // namespace
}  // namespace albic::workload
