#include "workload/weather.h"

#include <gtest/gtest.h>

namespace albic::workload {
namespace {

TEST(WeatherTest, PrecipitationWithinHistoricalMax) {
  WeatherModel w(WeatherOptions{100, 4});
  for (int s = 0; s < 100; ++s) {
    for (int d = 0; d < 50; ++d) {
      const double p = w.PrecipitationAt(s, d);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, w.HistoricalMax(s));
    }
  }
}

TEST(WeatherTest, RainScoreInRange) {
  WeatherModel w(WeatherOptions{50, 4});
  for (int s = 0; s < 50; ++s) {
    for (int d = 0; d < 30; ++d) {
      const double score = w.RainScore(s, d);
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 100.0);
      const int decade = w.RainScoreDecade(s, d);
      EXPECT_EQ(decade % 10, 0);
      EXPECT_GE(decade, 0);
      EXPECT_LE(decade, 100);
      EXPECT_EQ(decade, static_cast<int>(score / 10.0) * 10);
    }
  }
}

TEST(WeatherTest, SomeRainSomeDry) {
  WeatherModel w(WeatherOptions{200, 4});
  int wet = 0, dry = 0;
  for (int s = 0; s < 200; ++s) {
    for (int d = 0; d < 20; ++d) {
      w.PrecipitationAt(s, d) > 0.0 ? ++wet : ++dry;
    }
  }
  EXPECT_GT(wet, 200);
  EXPECT_GT(dry, 200);
}

TEST(WeatherTest, DeterministicReplay) {
  WeatherModel a(WeatherOptions{30, 7});
  WeatherModel b(WeatherOptions{30, 7});
  for (int s = 0; s < 30; ++s) {
    EXPECT_DOUBLE_EQ(a.PrecipitationAt(s, 11), b.PrecipitationAt(s, 11));
  }
}

TEST(WeatherTest, SeasonalStructurePresent) {
  WeatherModel w(WeatherOptions{1, 4});
  // Average precipitation differs between opposite halves of the year.
  double h1 = 0, h2 = 0;
  for (int d = 0; d < 120; ++d) h1 += w.PrecipitationAt(0, d);
  for (int d = 182; d < 302; ++d) h2 += w.PrecipitationAt(0, d);
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace albic::workload
