#include "workload/synthetic_collocation.h"

#include <gtest/gtest.h>

#include "engine/load_model.h"

namespace albic::workload {
namespace {

SyntheticCollocationOptions Small(double max_col) {
  SyntheticCollocationOptions opts;
  opts.nodes = 4;
  opts.key_groups = 80;
  opts.operators = 4;
  opts.max_collocation_pct = max_col;
  opts.seed = 3;
  return opts;
}

TEST(SyntheticCollocationTest, MaxCollocatableTracksKnob) {
  for (double pct : {0.0, 30.0, 70.0, 100.0}) {
    SyntheticCollocationWorkload wl(Small(pct));
    EXPECT_NEAR(wl.max_collocatable_fraction() * 100.0, pct, 15.0)
        << "knob " << pct;
  }
}

TEST(SyntheticCollocationTest, AdversarialStartHasLowCollocation) {
  SyntheticCollocationWorkload wl(Small(100.0));
  engine::Assignment assign = wl.MakeInitialAssignment();
  EXPECT_LT(engine::CollocationPercent(*wl.comm(), assign), 35.0);
}

TEST(SyntheticCollocationTest, PeriodNoiseIsBoundedAndDeterministic) {
  SyntheticCollocationWorkload wl(Small(50.0));
  wl.AdvancePeriod(0);
  std::vector<double> first = wl.group_proc_loads();
  wl.AdvancePeriod(1);
  std::vector<double> second = wl.group_proc_loads();
  EXPECT_NE(first, second);
  wl.AdvancePeriod(0);
  EXPECT_EQ(wl.group_proc_loads(), first);  // deterministic replay
  // Noise bounded by fluct_pct.
  for (size_t g = 0; g < first.size(); ++g) {
    EXPECT_NEAR(second[g] / first[g], 1.0, 0.05);
  }
}

TEST(SyntheticCollocationTest, CommMatrixRowShapes) {
  SyntheticCollocationWorkload wl(Small(50.0));
  int one_to_one = 0, spread = 0, empty = 0;
  for (engine::KeyGroupId g = 0; g < wl.num_key_groups(); ++g) {
    const auto& row = wl.comm()->row(g);
    if (row.empty()) {
      ++empty;
    } else if (row.size() == 1) {
      ++one_to_one;
    } else {
      ++spread;
    }
  }
  EXPECT_GT(one_to_one, 0);
  EXPECT_GT(spread, 0);
  EXPECT_EQ(empty, 40);  // consumer operators emit nothing
}

}  // namespace
}  // namespace albic::workload
