#include "workload/airline.h"

#include <gtest/gtest.h>

#include <numeric>

#include "engine/load_model.h"

namespace albic::workload {
namespace {

AirlineOptions Small(int job) {
  AirlineOptions opts;
  opts.job = job;
  opts.nodes = 4;
  opts.groups_per_node = 5;
  opts.seed = 8;
  return opts;
}

TEST(AirlineTest, Job2TopologyAndPerfectCollocatability) {
  AirlineWorkload wl(Small(2));
  EXPECT_EQ(wl.topology().num_operators(), 2);
  EXPECT_EQ(wl.topology().num_key_groups(), 40);
  // All traffic rides the one-to-one extract->sum edge: perfect collocation
  // is obtainable (§5.4, Real Job 2).
  EXPECT_NEAR(wl.max_collocatable_fraction(), 1.0, 1e-9);
}

TEST(AirlineTest, Job3HalvesObtainableCollocation) {
  AirlineWorkload wl(Small(3));
  EXPECT_EQ(wl.topology().num_operators(), 3);
  EXPECT_NEAR(wl.max_collocatable_fraction(), 0.5, 0.05);
}

TEST(AirlineTest, Job4ObtainableCollocationNearCola61) {
  AirlineWorkload wl(Small(4));
  EXPECT_EQ(wl.topology().num_operators(), 7);
  EXPECT_NEAR(wl.max_collocatable_fraction(), 0.61, 0.08);
}

TEST(AirlineTest, AdversarialAssignmentStartsUncollocated) {
  AirlineWorkload wl(Small(2));
  engine::Assignment assign = wl.MakeAdversarialAssignment();
  EXPECT_LT(engine::CollocationPercent(*wl.comm(), assign), 10.0);
}

TEST(AirlineTest, TotalLoadNormalizedToTarget) {
  AirlineWorkload wl(Small(4));
  wl.AdvancePeriod(5);
  const double total = std::accumulate(wl.group_proc_loads().begin(),
                                       wl.group_proc_loads().end(), 0.0);
  EXPECT_NEAR(total, 0.5 * 100.0 * 4, 1e-6);
}

TEST(AirlineTest, RateScaleHalvesLoad) {
  AirlineOptions half = Small(2);
  half.rate_scale = 0.5;
  AirlineWorkload wl(half);
  wl.AdvancePeriod(0);
  const double total = std::accumulate(wl.group_proc_loads().begin(),
                                       wl.group_proc_loads().end(), 0.0);
  EXPECT_NEAR(total, 0.5 * 0.5 * 100.0 * 4, 1e-6);
}

TEST(AirlineTest, OneToOneEdgesAlignGroupIndices) {
  AirlineWorkload wl(Small(2));
  const engine::KeyGroupId ex0 = wl.topology().first_group(wl.extract_op());
  const engine::KeyGroupId sm0 = wl.topology().first_group(wl.sum_op());
  for (int i = 0; i < 40 / 2; ++i) {
    const auto& row = wl.comm()->row(ex0 + i);
    ASSERT_EQ(row.size(), 1u);
    EXPECT_EQ(row[0].to, sm0 + i);
  }
}

TEST(AirlineTest, DeterministicPerSeed) {
  AirlineWorkload a(Small(3)), b(Small(3));
  a.AdvancePeriod(2);
  b.AdvancePeriod(2);
  EXPECT_EQ(a.group_proc_loads(), b.group_proc_loads());
}

}  // namespace
}  // namespace albic::workload
