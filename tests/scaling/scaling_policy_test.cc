#include "scaling/scaling_policy.h"

#include <gtest/gtest.h>

namespace albic::scaling {
namespace {

using balance::RebalancePlan;
using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::SystemSnapshot;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;
  RebalancePlan plan;

  Fixture(int nodes, std::vector<double> loads) : cluster(nodes) {
    topo.AddOperator("op", static_cast<int>(loads.size()), 1 << 20);
    Assignment assign(static_cast<int>(loads.size()));
    for (KeyGroupId g = 0; g < assign.num_groups(); ++g) {
      assign.set_node(g, g % nodes);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    snap.group_loads = std::move(loads);
    snap.migration_costs.assign(snap.group_loads.size(), 1.0);
    plan.assignment = assign;  // potential plan = status quo
  }
};

TEST(ScalingPolicyTest, NoActionInComfortBand) {
  // Two nodes at 60%: inside [40, 85], nothing to do.
  Fixture f(2, {60, 60});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_FALSE(d.any());
}

TEST(ScalingPolicyTest, ScalesOutWhenPlanCannotFixOverload) {
  // One group of 95% on each node: even a perfect plan leaves nodes hot.
  Fixture f(2, {95, 95});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_GT(d.add_nodes, 0);
  EXPECT_TRUE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, NoScaleOutWhenPlanFixesIt) {
  // Current allocation is awful (both groups on node 0) but the potential
  // plan splits them: planned max is 45%, no scaling needed. Algorithm 1's
  // whole point.
  Fixture f(2, {45, 45});
  f.snap.assignment.set_node(0, 0);
  f.snap.assignment.set_node(1, 0);
  f.plan.assignment = f.snap.assignment;
  f.plan.assignment.set_node(1, 1);  // plan fixes the overload
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_EQ(d.add_nodes, 0);
}

TEST(ScalingPolicyTest, ScalesInWhenUnderUtilized) {
  // Four nodes at ~20%: two could handle it at the 65% target.
  Fixture f(4, {20, 20, 20, 20});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_EQ(d.add_nodes, 0);
  EXPECT_FALSE(d.mark_for_removal.empty());
  EXPECT_LE(d.mark_for_removal.size(), 3u);
  // Survivors must stay under target: 80 total / (4-k) <= 65 -> k <= 2.
  EXPECT_LE(d.mark_for_removal.size(), 2u);
}

TEST(ScalingPolicyTest, NoScaleInWhileDraining) {
  Fixture f(4, {10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(3).ok());
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_TRUE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, UndesirableScaleInSkipped) {
  // Mean 50% is below nothing: loads already above scale-in threshold.
  Fixture f(2, {40, 45});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_TRUE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, CapsChangesPerRound) {
  Fixture f(20, std::vector<double>(20, 1.0));  // basically idle
  UtilizationPolicyOptions opts;
  opts.max_change_per_round = 3;
  UtilizationScalingPolicy policy(opts);
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_LE(d.mark_for_removal.size(), 3u);
}

TEST(ScalingPolicyTest, NullPolicyNeverActs) {
  Fixture f(2, {99, 99});
  NullScalingPolicy policy;
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
}

UtilizationPolicyOptions TrendOptions() {
  UtilizationPolicyOptions opts;
  opts.queue_trend_slope_us = 50.0;
  opts.queue_trend_min_periods = 3;
  opts.queue_trend_min_mean_load = 30.0;
  return opts;
}

engine::QueueDelayTrend RisingTrend(int periods, double slope) {
  engine::QueueDelayTrend trend;
  trend.measured = true;
  trend.p99_ewma_us = 5000.0;
  trend.slope_us_per_period = slope;
  trend.rising_periods = periods;
  return trend;
}

TEST(ScalingPolicyTest, SustainedQueueGrowthScalesOutEarly) {
  // Two nodes at 60%: inside the comfort band, so plain utilization
  // scaling does nothing — but the measured queue delay has been rising
  // for three periods, the forecastable precursor of a p99 breach, and
  // the policy adds a node before the breach ever fires.
  Fixture f(2, {60, 60});
  f.snap.queue_trend = RisingTrend(3, 120.0);
  UtilizationScalingPolicy policy(TrendOptions());
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_EQ(d.add_nodes, 1);
  EXPECT_TRUE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, ShortOrShallowQueueGrowthDoesNotScale) {
  Fixture f(2, {60, 60});
  UtilizationScalingPolicy policy(TrendOptions());
  // Only two rising periods: not sustained yet.
  f.snap.queue_trend = RisingTrend(2, 120.0);
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
  // Sustained but shallow slope: below the configured threshold.
  f.snap.queue_trend = RisingTrend(6, 10.0);
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
}

TEST(ScalingPolicyTest, QueueGrowthFiresEdgePacedNotEveryRound) {
  // Level-triggering would add one node per round for as long as the ramp
  // lasts; the trigger must instead fire on every min_periods-th rising
  // period — once per full observation window.
  Fixture f(2, {60, 60});
  UtilizationScalingPolicy policy(TrendOptions());
  f.snap.queue_trend = RisingTrend(3, 120.0);
  EXPECT_EQ(policy.Decide(f.snap, f.plan).add_nodes, 1);
  // The ramp continues: periods 4 and 5 are between edges — no action.
  f.snap.queue_trend = RisingTrend(4, 120.0);
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
  f.snap.queue_trend = RisingTrend(5, 120.0);
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
  // A further full window of growth escalates once more.
  f.snap.queue_trend = RisingTrend(6, 120.0);
  EXPECT_EQ(policy.Decide(f.snap, f.plan).add_nodes, 1);
}

TEST(ScalingPolicyTest, QueueGrowthSuppressedWhileDraining) {
  // A node is still draining from an earlier decision: adding now would
  // oscillate against the in-flight scale-in.
  Fixture f(4, {60, 60, 60, 60});
  ASSERT_TRUE(f.cluster.MarkForRemoval(3).ok());
  f.snap.queue_trend = RisingTrend(3, 120.0);
  UtilizationScalingPolicy policy(TrendOptions());
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
}

TEST(ScalingPolicyTest, QueueGrowthOnIdleSystemIgnored) {
  // A near-idle system with rising queue noise must not scale out (the
  // min-mean-load gate): scale-in still proceeds as usual.
  Fixture f(4, {20, 20, 20, 20});
  f.snap.queue_trend = RisingTrend(6, 120.0);
  UtilizationScalingPolicy policy(TrendOptions());
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_EQ(d.add_nodes, 0);
  EXPECT_FALSE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, UnmeasuredTrendChangesNothing) {
  // Trend knobs configured but telemetry off (trend unmeasured): the
  // decision is exactly the plain utilization decision.
  Fixture f(2, {60, 60});
  UtilizationScalingPolicy policy(TrendOptions());
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
}

}  // namespace
}  // namespace albic::scaling
