#include "scaling/scaling_policy.h"

#include <gtest/gtest.h>

namespace albic::scaling {
namespace {

using balance::RebalancePlan;
using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::SystemSnapshot;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;
  RebalancePlan plan;

  Fixture(int nodes, std::vector<double> loads) : cluster(nodes) {
    topo.AddOperator("op", static_cast<int>(loads.size()), 1 << 20);
    Assignment assign(static_cast<int>(loads.size()));
    for (KeyGroupId g = 0; g < assign.num_groups(); ++g) {
      assign.set_node(g, g % nodes);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    snap.group_loads = std::move(loads);
    snap.migration_costs.assign(snap.group_loads.size(), 1.0);
    plan.assignment = assign;  // potential plan = status quo
  }
};

TEST(ScalingPolicyTest, NoActionInComfortBand) {
  // Two nodes at 60%: inside [40, 85], nothing to do.
  Fixture f(2, {60, 60});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_FALSE(d.any());
}

TEST(ScalingPolicyTest, ScalesOutWhenPlanCannotFixOverload) {
  // One group of 95% on each node: even a perfect plan leaves nodes hot.
  Fixture f(2, {95, 95});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_GT(d.add_nodes, 0);
  EXPECT_TRUE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, NoScaleOutWhenPlanFixesIt) {
  // Current allocation is awful (both groups on node 0) but the potential
  // plan splits them: planned max is 45%, no scaling needed. Algorithm 1's
  // whole point.
  Fixture f(2, {45, 45});
  f.snap.assignment.set_node(0, 0);
  f.snap.assignment.set_node(1, 0);
  f.plan.assignment = f.snap.assignment;
  f.plan.assignment.set_node(1, 1);  // plan fixes the overload
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_EQ(d.add_nodes, 0);
}

TEST(ScalingPolicyTest, ScalesInWhenUnderUtilized) {
  // Four nodes at ~20%: two could handle it at the 65% target.
  Fixture f(4, {20, 20, 20, 20});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_EQ(d.add_nodes, 0);
  EXPECT_FALSE(d.mark_for_removal.empty());
  EXPECT_LE(d.mark_for_removal.size(), 3u);
  // Survivors must stay under target: 80 total / (4-k) <= 65 -> k <= 2.
  EXPECT_LE(d.mark_for_removal.size(), 2u);
}

TEST(ScalingPolicyTest, NoScaleInWhileDraining) {
  Fixture f(4, {10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(3).ok());
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_TRUE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, UndesirableScaleInSkipped) {
  // Mean 50% is below nothing: loads already above scale-in threshold.
  Fixture f(2, {40, 45});
  UtilizationScalingPolicy policy;
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_TRUE(d.mark_for_removal.empty());
}

TEST(ScalingPolicyTest, CapsChangesPerRound) {
  Fixture f(20, std::vector<double>(20, 1.0));  // basically idle
  UtilizationPolicyOptions opts;
  opts.max_change_per_round = 3;
  UtilizationScalingPolicy policy(opts);
  ScalingDecision d = policy.Decide(f.snap, f.plan);
  EXPECT_LE(d.mark_for_removal.size(), 3u);
}

TEST(ScalingPolicyTest, NullPolicyNeverActs) {
  Fixture f(2, {99, 99});
  NullScalingPolicy policy;
  EXPECT_FALSE(policy.Decide(f.snap, f.plan).any());
}

}  // namespace
}  // namespace albic::scaling
