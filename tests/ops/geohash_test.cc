#include "ops/geohash.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "engine/operator.h"

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

TEST(GeoHashTest, ReKeysByCellAndPreservesArticle) {
  GeoHashOperator op(2, 1024);
  Capture out;
  engine::Tuple t;
  t.key = 777;
  t.num = 3.0;
  op.Process(t, 0, &out);
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].key, op.CellFor(777));
  EXPECT_EQ(out.tuples[0].aux, 777u);  // article id preserved
  EXPECT_DOUBLE_EQ(out.tuples[0].num, 3.0);
}

TEST(GeoHashTest, CellsAreDeterministicAndInRange) {
  GeoHashOperator op(1, 4096);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(op.CellFor(k), op.CellFor(k));
    EXPECT_LT(op.CellFor(k), 4096u);
  }
}

TEST(GeoHashTest, CellsRoughlyEvenOverDenmark) {
  // The §5.2 assumption: an even distribution of geohash values.
  GeoHashOperator op(1, 64);
  std::map<uint64_t, int> counts;
  for (uint64_t k = 0; k < 64000; ++k) ++counts[op.CellFor(k)];
  EXPECT_GT(counts.size(), 55u);
  for (const auto& [cell, c] : counts) {
    EXPECT_GT(c, 500);
    EXPECT_LT(c, 2000);
  }
}

TEST(GeoHashTest, StateRoundTrip) {
  GeoHashOperator op(2, 64);
  Capture out;
  engine::Tuple t;
  t.key = 5;
  op.Process(t, 1, &out);
  op.Process(t, 1, &out);
  EXPECT_EQ(op.processed(1), 2);
  std::string state = op.SerializeGroupState(1);
  op.ClearGroupState(1);
  EXPECT_EQ(op.processed(1), 0);
  ASSERT_TRUE(op.DeserializeGroupState(1, state).ok());
  EXPECT_EQ(op.processed(1), 2);
}

TEST(GeoHashTest, DeserializeRejectsTruncated) {
  GeoHashOperator op(1, 64);
  EXPECT_FALSE(op.DeserializeGroupState(0, "xy").ok());
}

}  // namespace
}  // namespace albic::ops
