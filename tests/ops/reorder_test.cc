#include "ops/reorder.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

engine::Tuple At(int64_t ts, uint64_t key = 1) {
  engine::Tuple t;
  t.key = key;
  t.ts = ts;
  return t;
}

TEST(ReorderTest, ReordersWithinBound) {
  ReorderBufferOperator op(1, /*bound_us=*/100);
  Capture out;
  op.Process(At(50), 0, &out);
  op.Process(At(10), 0, &out);   // out of order but within bound
  op.Process(At(30), 0, &out);
  EXPECT_TRUE(out.tuples.empty());  // watermark = 50-100 < everything
  op.Process(At(200), 0, &out);     // watermark -> 100: releases 10,30,50
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(out.tuples[0].ts, 10);
  EXPECT_EQ(out.tuples[1].ts, 30);
  EXPECT_EQ(out.tuples[2].ts, 50);
}

TEST(ReorderTest, StragglersForwardedImmediately) {
  ReorderBufferOperator op(1, 100);
  Capture out;
  op.Process(At(500), 0, &out);  // watermark = 400
  op.Process(At(100), 0, &out);  // beyond bound: straggler
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].ts, 100);
  EXPECT_EQ(op.stragglers(0), 1);
}

TEST(ReorderTest, DuplicateTimestampsKeepAll) {
  ReorderBufferOperator op(1, 10);
  Capture out;
  op.Process(At(5, 1), 0, &out);
  op.Process(At(5, 2), 0, &out);
  op.Process(At(100), 0, &out);
  ASSERT_EQ(out.tuples.size(), 2u);  // both ts=5 tuples released
  EXPECT_EQ(op.buffered(0), 1);      // the ts=100 tuple still held
}

TEST(ReorderTest, FlushDrainsInOrder) {
  ReorderBufferOperator op(1, 1000);
  Capture out;
  op.Process(At(30), 0, &out);
  op.Process(At(10), 0, &out);
  op.Process(At(20), 0, &out);
  EXPECT_TRUE(out.tuples.empty());
  op.Flush(0, &out);
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(out.tuples[0].ts, 10);
  EXPECT_EQ(out.tuples[2].ts, 30);
  EXPECT_EQ(op.buffered(0), 0);
}

TEST(ReorderTest, GroupsIndependent) {
  ReorderBufferOperator op(2, 100);
  Capture out;
  op.Process(At(1000), 0, &out);
  op.Process(At(5), 1, &out);  // group 1's watermark untouched by group 0
  EXPECT_EQ(op.stragglers(1), 0);
  EXPECT_EQ(op.buffered(1), 1);
}

TEST(ReorderTest, StateRoundTripPreservesBufferAndWatermark) {
  ReorderBufferOperator op(1, 100);
  Capture out;
  op.Process(At(500), 0, &out);
  op.Process(At(450), 0, &out);
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_EQ(op.buffered(0), 0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_EQ(op.buffered(0), 2);
  // Watermark survived: a pre-watermark tuple is still a straggler.
  op.Process(At(100), 0, &out);
  EXPECT_EQ(op.stragglers(0), 1);
}

/// Reference reorder buffer: the std::multimap implementation the operator
/// used before FlatMap64 backed it. Kept verbatim as the differential
/// oracle — emission order, straggler accounting, watermark advancement
/// and flush semantics must all stay exactly what this code does.
class ReferenceReorder {
 public:
  explicit ReferenceReorder(int64_t bound_us) : bound_us_(bound_us) {}

  void Process(const engine::Tuple& tuple, std::vector<engine::Tuple>* out) {
    if (watermark_ != std::numeric_limits<int64_t>::min() &&
        tuple.ts < watermark_) {
      ++stragglers_;
      out->push_back(tuple);
      return;
    }
    buffer_.emplace(tuple.ts, tuple);
    const int64_t max_ts = buffer_.rbegin()->first;
    const int64_t new_watermark = max_ts - bound_us_;
    if (new_watermark > watermark_) watermark_ = new_watermark;
    while (!buffer_.empty() && buffer_.begin()->first <= watermark_) {
      out->push_back(buffer_.begin()->second);
      buffer_.erase(buffer_.begin());
    }
  }

  void Flush(std::vector<engine::Tuple>* out) {
    for (const auto& [ts, tuple] : buffer_) out->push_back(tuple);
    if (!buffer_.empty()) {
      watermark_ = std::max(watermark_, buffer_.rbegin()->first);
    }
    buffer_.clear();
  }

  int64_t buffered() const { return static_cast<int64_t>(buffer_.size()); }
  int64_t stragglers() const { return stragglers_; }

 private:
  int64_t bound_us_;
  std::multimap<int64_t, engine::Tuple> buffer_;
  int64_t watermark_ = std::numeric_limits<int64_t>::min();
  int64_t stragglers_ = 0;
};

bool SameTuple(const engine::Tuple& a, const engine::Tuple& b) {
  return a.key == b.key && a.ts == b.ts && a.num == b.num && a.aux == b.aux;
}

TEST(ReorderTest, RandomizedDifferentialVsMultimapReference) {
  // Random streams with heavy timestamp collisions and out-of-order jitter
  // (including beyond-bound stragglers), random mid-stream serialize +
  // clear + deserialize round trips, and a final flush: the FlatMap64
  // implementation must emit exactly the reference's tuple sequence and
  // agree on every counter at every step.
  Rng rng(20260727);
  for (int round = 0; round < 20; ++round) {
    const int64_t bound = rng.UniformInt(0, 3) * 50;  // includes bound = 0
    ReorderBufferOperator op(1, bound);
    ReferenceReorder ref(bound);
    Capture out;
    std::vector<engine::Tuple> expected;

    int64_t base_ts = 0;
    const int tuples = static_cast<int>(rng.UniformInt(100, 400));
    for (int i = 0; i < tuples; ++i) {
      base_ts += rng.UniformInt(0, 20);
      engine::Tuple t;
      t.ts = base_ts - rng.UniformInt(0, 150);  // jitter past the bound
      t.key = static_cast<uint64_t>(rng.UniformInt(0, 5));
      t.num = static_cast<double>(i);
      op.Process(t, 0, &out);
      ref.Process(t, &expected);
      ASSERT_EQ(op.buffered(0), ref.buffered()) << "round " << round;
      ASSERT_EQ(op.stragglers(0), ref.stragglers()) << "round " << round;
      if (rng.Bernoulli(0.02)) {
        // The round trip must be lossless and keep the stream identical.
        const std::string state = op.SerializeGroupState(0);
        op.ClearGroupState(0);
        ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
        ASSERT_EQ(op.SerializeGroupState(0), state);
      }
    }
    op.Flush(0, &out);
    ref.Flush(&expected);

    ASSERT_EQ(out.tuples.size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(SameTuple(out.tuples[i], expected[i]))
          << "round " << round << " tuple " << i;
    }
  }
}

TEST(ReorderTest, InOrderStreamPassesThroughWithDelay) {
  ReorderBufferOperator op(1, 50);
  Capture out;
  for (int64_t ts = 0; ts <= 300; ts += 25) op.Process(At(ts), 0, &out);
  // Everything up to 300-50=250 released, in order.
  ASSERT_EQ(out.tuples.size(), 11u);
  for (size_t i = 1; i < out.tuples.size(); ++i) {
    EXPECT_LT(out.tuples[i - 1].ts, out.tuples[i].ts);
  }
}

}  // namespace
}  // namespace albic::ops
