#include "ops/reorder.h"

#include <gtest/gtest.h>

#include <vector>

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

engine::Tuple At(int64_t ts, uint64_t key = 1) {
  engine::Tuple t;
  t.key = key;
  t.ts = ts;
  return t;
}

TEST(ReorderTest, ReordersWithinBound) {
  ReorderBufferOperator op(1, /*bound_us=*/100);
  Capture out;
  op.Process(At(50), 0, &out);
  op.Process(At(10), 0, &out);   // out of order but within bound
  op.Process(At(30), 0, &out);
  EXPECT_TRUE(out.tuples.empty());  // watermark = 50-100 < everything
  op.Process(At(200), 0, &out);     // watermark -> 100: releases 10,30,50
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(out.tuples[0].ts, 10);
  EXPECT_EQ(out.tuples[1].ts, 30);
  EXPECT_EQ(out.tuples[2].ts, 50);
}

TEST(ReorderTest, StragglersForwardedImmediately) {
  ReorderBufferOperator op(1, 100);
  Capture out;
  op.Process(At(500), 0, &out);  // watermark = 400
  op.Process(At(100), 0, &out);  // beyond bound: straggler
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].ts, 100);
  EXPECT_EQ(op.stragglers(0), 1);
}

TEST(ReorderTest, DuplicateTimestampsKeepAll) {
  ReorderBufferOperator op(1, 10);
  Capture out;
  op.Process(At(5, 1), 0, &out);
  op.Process(At(5, 2), 0, &out);
  op.Process(At(100), 0, &out);
  ASSERT_EQ(out.tuples.size(), 2u);  // both ts=5 tuples released
  EXPECT_EQ(op.buffered(0), 1);      // the ts=100 tuple still held
}

TEST(ReorderTest, FlushDrainsInOrder) {
  ReorderBufferOperator op(1, 1000);
  Capture out;
  op.Process(At(30), 0, &out);
  op.Process(At(10), 0, &out);
  op.Process(At(20), 0, &out);
  EXPECT_TRUE(out.tuples.empty());
  op.Flush(0, &out);
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_EQ(out.tuples[0].ts, 10);
  EXPECT_EQ(out.tuples[2].ts, 30);
  EXPECT_EQ(op.buffered(0), 0);
}

TEST(ReorderTest, GroupsIndependent) {
  ReorderBufferOperator op(2, 100);
  Capture out;
  op.Process(At(1000), 0, &out);
  op.Process(At(5), 1, &out);  // group 1's watermark untouched by group 0
  EXPECT_EQ(op.stragglers(1), 0);
  EXPECT_EQ(op.buffered(1), 1);
}

TEST(ReorderTest, StateRoundTripPreservesBufferAndWatermark) {
  ReorderBufferOperator op(1, 100);
  Capture out;
  op.Process(At(500), 0, &out);
  op.Process(At(450), 0, &out);
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_EQ(op.buffered(0), 0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_EQ(op.buffered(0), 2);
  // Watermark survived: a pre-watermark tuple is still a straggler.
  op.Process(At(100), 0, &out);
  EXPECT_EQ(op.stragglers(0), 1);
}

TEST(ReorderTest, InOrderStreamPassesThroughWithDelay) {
  ReorderBufferOperator op(1, 50);
  Capture out;
  for (int64_t ts = 0; ts <= 300; ts += 25) op.Process(At(ts), 0, &out);
  // Everything up to 300-50=250 released, in order.
  ASSERT_EQ(out.tuples.size(), 11u);
  for (size_t i = 1; i < out.tuples.size(); ++i) {
    EXPECT_LT(out.tuples[i - 1].ts, out.tuples[i].ts);
  }
}

}  // namespace
}  // namespace albic::ops
