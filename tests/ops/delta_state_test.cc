// Delta-state contract of the stateful operators: a base snapshot plus the
// deltas serialized from the dirty-key tracker must reconstruct exactly the
// live state — including erased keys, the reset flag, and the non-map
// sidecars (flush counters, last_top_) deltas always carry whole.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map64.h"
#include "engine/operator.h"
#include "ops/aggregate.h"
#include "ops/serde_util.h"
#include "ops/store.h"
#include "ops/topk.h"

namespace albic::ops {
namespace {

engine::Tuple MakeTuple(uint64_t key, double num, uint64_t aux = 0) {
  engine::Tuple t;
  t.key = key;
  t.num = num;
  t.aux = aux;
  return t;
}

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

TEST(DeltaStateTest, StoreDeltaChainReconstructsBitIdentically) {
  StoreSinkOperator live(1);
  engine::StateChangeTracker tracker;
  live.AttachChangeTracker(0, &tracker);
  for (uint64_t k = 1; k <= 200; ++k) {
    live.Process(MakeTuple(k, static_cast<double>(k) * 0.25), 0, nullptr);
  }
  live.OnWindow(0, nullptr);  // flush counter rides along in base and delta
  const std::string base = live.SerializeGroupState(0);
  tracker.Clear();

  // Touch a handful of keys; the delta must be tiny next to the base.
  live.Process(MakeTuple(5, -1.0), 0, nullptr);
  live.Process(MakeTuple(900, 3.5), 0, nullptr);
  live.OnWindow(0, nullptr);
  const std::string d1 = live.SerializeGroupDelta(0);
  EXPECT_LT(d1.size(), base.size() / 8);
  tracker.Clear();

  live.Process(MakeTuple(900, 4.5), 0, nullptr);
  const std::string d2 = live.SerializeGroupDelta(0);
  tracker.Clear();

  StoreSinkOperator restored(1);
  ASSERT_TRUE(restored.DeserializeGroupState(0, base).ok());
  ASSERT_TRUE(restored.ApplyGroupDelta(0, d1).ok());
  ASSERT_TRUE(restored.ApplyGroupDelta(0, d2).ok());
  EXPECT_EQ(restored.SerializeGroupState(0), live.SerializeGroupState(0));
  EXPECT_DOUBLE_EQ(restored.ValueFor(0, 900), 4.5);
  EXPECT_EQ(restored.flushes(0), live.flushes(0));
}

TEST(DeltaStateTest, TopKDeltaCarriesCountsAndLastTop) {
  WindowedTopKOperator live(1, /*k=*/3);
  engine::StateChangeTracker tracker;
  live.AttachChangeTracker(0, &tracker);
  Capture out;
  for (uint64_t id = 1; id <= 40; ++id) {
    for (uint64_t hits = 0; hits < id % 5 + 1; ++hits) {
      live.Process(MakeTuple(/*key=*/7, 0.0, /*aux=*/id), 0, &out);
    }
  }
  live.OnWindow(0, &out);  // closes the window: last_top_ set, counts reset
  // The window fire reset the tracked state — a delta cannot describe it.
  EXPECT_TRUE(tracker.reset());
  const std::string base = live.SerializeGroupState(0);
  tracker.Clear();

  live.Process(MakeTuple(7, 0.0, /*aux=*/11), 0, &out);
  live.Process(MakeTuple(7, 0.0, /*aux=*/12), 0, &out);
  const std::string delta = live.SerializeGroupDelta(0);
  tracker.Clear();

  WindowedTopKOperator restored(1, /*k=*/3);
  ASSERT_TRUE(restored.DeserializeGroupState(0, base).ok());
  ASSERT_TRUE(restored.ApplyGroupDelta(0, delta).ok());
  EXPECT_EQ(restored.SerializeGroupState(0), live.SerializeGroupState(0));
  EXPECT_EQ(restored.last_window_top(0), live.last_window_top(0));
}

TEST(DeltaStateTest, AggregateDeltaMatchesLiveSums) {
  SumByKeyOperator live(1, GroupField::kKey, /*emit_updates=*/false);
  engine::StateChangeTracker tracker;
  live.AttachChangeTracker(0, &tracker);
  for (uint64_t k = 1; k <= 100; ++k) {
    live.Process(MakeTuple(k, 1.5), 0, nullptr);
  }
  const std::string base = live.SerializeGroupState(0);
  tracker.Clear();

  live.Process(MakeTuple(17, 2.0), 0, nullptr);
  live.Process(MakeTuple(500, 4.0), 0, nullptr);
  const std::string delta = live.SerializeGroupDelta(0);
  tracker.Clear();

  SumByKeyOperator restored(1, GroupField::kKey, /*emit_updates=*/false);
  ASSERT_TRUE(restored.DeserializeGroupState(0, base).ok());
  ASSERT_TRUE(restored.ApplyGroupDelta(0, delta).ok());
  // The sum map serializes in iteration order, so compare content, not
  // bytes: every key of the live run and the totals must agree.
  EXPECT_DOUBLE_EQ(restored.GroupTotal(0), live.GroupTotal(0));
  for (uint64_t k = 1; k <= 100; ++k) {
    EXPECT_DOUBLE_EQ(restored.SumFor(0, k), live.SumFor(0, k)) << "key " << k;
  }
  EXPECT_DOUBLE_EQ(restored.SumFor(0, 500), 4.0);
}

TEST(DeltaStateTest, MapDeltaEncodesErasesAndReset) {
  // Serde-level pin of the wire format: a marked key absent from the live
  // map becomes an erase, and the reset flag makes apply clear first.
  FlatMap64<int64_t> live;
  engine::StateChangeTracker tracker;
  for (uint64_t k = 1; k <= 10; ++k) live[k] = static_cast<int64_t>(k);

  FlatMap64<int64_t> target;
  for (uint64_t k = 1; k <= 10; ++k) target[k] = static_cast<int64_t>(k);
  target[99] = 99;  // divergence an erase-carrying delta must remove

  live[3] = 33;
  tracker.MarkDirty(3);
  live.erase(7);
  tracker.MarkErased(7);
  tracker.MarkErased(99);  // erased here, never present in `live`

  StateWriter w;
  WriteMapDelta(w, tracker, live,
                [](StateWriter& out, int64_t v) { out.PutI64(v); });
  const std::string delta = w.Take();
  StateReader r(delta);
  ASSERT_TRUE(ReadMapDelta(r, target, [](StateReader& in, int64_t* v) {
                return in.GetI64(v);
              }).ok());
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(target.size(), live.size());
  for (const auto& [key, value] : live) {
    EXPECT_EQ(target.at(key), value) << "key " << key;
  }
  EXPECT_EQ(target.find(7), nullptr);
  EXPECT_EQ(target.find(99), nullptr);

  // Reset flag: apply clears the target before upserting.
  tracker.Clear();
  tracker.MarkReset();
  EXPECT_TRUE(tracker.reset());
  StateWriter w2;
  WriteMapDelta(w2, tracker, live,
                [](StateWriter& out, int64_t v) { out.PutI64(v); });
  FlatMap64<int64_t> polluted;
  polluted[1234] = 1;
  const std::string reset_delta = w2.Take();
  StateReader r2(reset_delta);
  ASSERT_TRUE(ReadMapDelta(r2, polluted, [](StateReader& in, int64_t* v) {
                return in.GetI64(v);
              }).ok());
  EXPECT_TRUE(polluted.empty());  // reset + no marked keys = cleared
}

TEST(DeltaStateTest, DetachedTrackerKeepsLegacyBehaviour) {
  // Without a tracker the operator reports delta support but the engine
  // never asks for deltas; mutation paths must behave exactly as before.
  StoreSinkOperator op(1);
  EXPECT_TRUE(op.SupportsDeltaState());
  op.Process(MakeTuple(1, 2.0), 0, nullptr);
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 1), 2.0);
  // Applying a delta produced elsewhere still works (indirect migration
  // target has no tracker attached while restoring).
  StoreSinkOperator src(1);
  engine::StateChangeTracker tracker;
  src.AttachChangeTracker(0, &tracker);
  src.Process(MakeTuple(5, 7.0), 0, nullptr);
  const std::string delta = src.SerializeGroupDelta(0);
  ASSERT_TRUE(op.ApplyGroupDelta(0, delta).ok());
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 5), 7.0);
}

}  // namespace
}  // namespace albic::ops
