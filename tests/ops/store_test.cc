#include "ops/store.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

TEST(StoreTest, UpsertsLatestValue) {
  StoreSinkOperator op(1);
  Capture out;
  engine::Tuple t;
  t.key = 1;
  t.num = 10.0;
  op.Process(t, 0, &out);
  t.num = 20.0;
  op.Process(t, 0, &out);
  EXPECT_TRUE(out.tuples.empty());  // sink never emits
  EXPECT_EQ(op.rows(0), 1);
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 1), 20.0);
}

TEST(StoreTest, PeriodicFlushCounts) {
  StoreSinkOperator op(1);
  Capture out;
  op.OnWindow(0, &out);
  op.OnWindow(0, &out);
  EXPECT_EQ(op.flushes(0), 2);
}

TEST(StoreTest, StateRoundTrip) {
  StoreSinkOperator op(1);
  Capture out;
  engine::Tuple t;
  t.key = 3;
  t.num = 7.0;
  op.Process(t, 0, &out);
  op.OnWindow(0, &out);
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_EQ(op.rows(0), 0);
  EXPECT_EQ(op.flushes(0), 0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 3), 7.0);
  EXPECT_EQ(op.flushes(0), 1);
}

TEST(StoreTest, UnseenKeyIsZero) {
  StoreSinkOperator op(1);
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 42), 0.0);
}

TEST(StoreTest, RandomizedDifferentialVsUnorderedMapReference) {
  // Random upsert streams (with key 0 and heavy key reuse) against a
  // std::unordered_map reference: every lookup, the row count, and the
  // serialize -> clear -> deserialize round trip must agree with the
  // reference at every step.
  Rng rng(727);
  for (int round = 0; round < 10; ++round) {
    StoreSinkOperator op(1);
    std::unordered_map<uint64_t, double> ref;
    Capture out;
    const int upserts = static_cast<int>(rng.UniformInt(200, 800));
    for (int i = 0; i < upserts; ++i) {
      engine::Tuple t;
      t.key = static_cast<uint64_t>(rng.UniformInt(0, 63));  // includes 0
      t.num = rng.Uniform(-100.0, 100.0);
      op.Process(t, 0, &out);
      ref[t.key] = t.num;
      if (rng.Bernoulli(0.05)) {
        const std::string state = op.SerializeGroupState(0);
        op.ClearGroupState(0);
        ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
        ASSERT_EQ(op.SerializeGroupState(0), state);
      }
    }
    ASSERT_EQ(op.rows(0), static_cast<int64_t>(ref.size()));
    for (const auto& [key, value] : ref) {
      ASSERT_DOUBLE_EQ(op.ValueFor(0, key), value) << "key " << key;
    }
  }
}

TEST(StoreTest, SerializationIsCanonicalAcrossInsertionOrders) {
  // Equal contents must serialize to equal bytes regardless of insertion
  // history — what keeps checkpoint + replay reconstruction byte-stable.
  StoreSinkOperator forward(1), shuffled(1);
  Capture out;
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 50; ++k) keys.push_back(k);
  for (uint64_t k : keys) {
    engine::Tuple t;
    t.key = k;
    t.num = static_cast<double>(k) * 1.5;
    forward.Process(t, 0, &out);
  }
  Rng rng(9);
  rng.Shuffle(&keys);
  for (uint64_t k : keys) {
    engine::Tuple t;
    t.key = k;
    t.num = -1.0;  // overwritten below, so growth timing differs too
    shuffled.Process(t, 0, &out);
  }
  for (uint64_t k : keys) {
    engine::Tuple t;
    t.key = k;
    t.num = static_cast<double>(k) * 1.5;
    shuffled.Process(t, 0, &out);
  }
  EXPECT_EQ(forward.SerializeGroupState(0), shuffled.SerializeGroupState(0));
}

}  // namespace
}  // namespace albic::ops
