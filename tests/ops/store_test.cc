#include "ops/store.h"

#include <gtest/gtest.h>

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

TEST(StoreTest, UpsertsLatestValue) {
  StoreSinkOperator op(1);
  Capture out;
  engine::Tuple t;
  t.key = 1;
  t.num = 10.0;
  op.Process(t, 0, &out);
  t.num = 20.0;
  op.Process(t, 0, &out);
  EXPECT_TRUE(out.tuples.empty());  // sink never emits
  EXPECT_EQ(op.rows(0), 1);
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 1), 20.0);
}

TEST(StoreTest, PeriodicFlushCounts) {
  StoreSinkOperator op(1);
  Capture out;
  op.OnWindow(0, &out);
  op.OnWindow(0, &out);
  EXPECT_EQ(op.flushes(0), 2);
}

TEST(StoreTest, StateRoundTrip) {
  StoreSinkOperator op(1);
  Capture out;
  engine::Tuple t;
  t.key = 3;
  t.num = 7.0;
  op.Process(t, 0, &out);
  op.OnWindow(0, &out);
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_EQ(op.rows(0), 0);
  EXPECT_EQ(op.flushes(0), 0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 3), 7.0);
  EXPECT_EQ(op.flushes(0), 1);
}

TEST(StoreTest, UnseenKeyIsZero) {
  StoreSinkOperator op(1);
  EXPECT_DOUBLE_EQ(op.ValueFor(0, 42), 0.0);
}

}  // namespace
}  // namespace albic::ops
