#include "ops/rainscore.h"

#include <gtest/gtest.h>

#include <vector>

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

engine::Tuple Record(uint64_t station, double precip) {
  engine::Tuple t;
  t.key = station;
  t.num = precip;
  return t;
}

TEST(RainScoreTest, ScoreIsPercentOfRunningMaxInDecades) {
  RainScoreOperator op(1);
  Capture out;
  op.Process(Record(1, 50.0), 0, &out);   // first: own max -> 100
  op.Process(Record(1, 25.0), 0, &out);   // half of max -> 50
  op.Process(Record(1, 13.0), 0, &out);   // 26% -> decade 20
  ASSERT_EQ(out.tuples.size(), 3u);
  EXPECT_DOUBLE_EQ(out.tuples[0].num, 100.0);
  EXPECT_DOUBLE_EQ(out.tuples[1].num, 50.0);
  EXPECT_DOUBLE_EQ(out.tuples[2].num, 20.0);
}

TEST(RainScoreTest, MaxIsPerStation) {
  RainScoreOperator op(1);
  Capture out;
  op.Process(Record(1, 100.0), 0, &out);
  op.Process(Record(2, 10.0), 0, &out);
  op.Process(Record(2, 5.0), 0, &out);  // 50% of station 2's max
  EXPECT_DOUBLE_EQ(out.tuples[2].num, 50.0);
  EXPECT_DOUBLE_EQ(op.MaxFor(0, 1), 100.0);
  EXPECT_DOUBLE_EQ(op.MaxFor(0, 2), 10.0);
}

TEST(RainScoreTest, ZeroPrecipitationScoresZero) {
  RainScoreOperator op(1);
  Capture out;
  op.Process(Record(3, 0.0), 0, &out);
  EXPECT_DOUBLE_EQ(out.tuples[0].num, 0.0);
}

TEST(RainScoreTest, StateRoundTrip) {
  RainScoreOperator op(1);
  Capture out;
  op.Process(Record(7, 42.0), 0, &out);
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_DOUBLE_EQ(op.MaxFor(0, 7), 0.0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_DOUBLE_EQ(op.MaxFor(0, 7), 42.0);
}

}  // namespace
}  // namespace albic::ops
