#include "ops/aggregate.h"

#include <gtest/gtest.h>

#include <vector>

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

TEST(SumByKeyTest, AccumulatesByKey) {
  SumByKeyOperator op(1, GroupField::kKey);
  Capture out;
  engine::Tuple t;
  t.key = 10;
  t.num = 5.0;
  op.Process(t, 0, &out);
  t.num = 7.0;
  op.Process(t, 0, &out);
  EXPECT_DOUBLE_EQ(op.SumFor(0, 10), 12.0);
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_DOUBLE_EQ(out.tuples[1].num, 12.0);  // running sum emitted
}

TEST(SumByKeyTest, GroupsByAuxWhenConfigured) {
  SumByKeyOperator op(1, GroupField::kAux);
  Capture out;
  engine::Tuple t;
  t.key = 1;
  t.aux = 99;  // route id
  t.num = 3.0;
  op.Process(t, 0, &out);
  t.key = 2;  // different plane, same route
  op.Process(t, 0, &out);
  EXPECT_DOUBLE_EQ(op.SumFor(0, 99), 6.0);
}

TEST(SumByKeyTest, SilentModeEmitsNothing) {
  SumByKeyOperator op(1, GroupField::kKey, /*emit_updates=*/false);
  Capture out;
  engine::Tuple t;
  t.key = 1;
  t.num = 1.0;
  op.Process(t, 0, &out);
  EXPECT_TRUE(out.tuples.empty());
}

TEST(SumByKeyTest, GroupTotalAndUnseenKeys) {
  SumByKeyOperator op(2, GroupField::kKey);
  Capture out;
  engine::Tuple t;
  t.key = 5;
  t.num = 2.5;
  op.Process(t, 0, &out);
  t.key = 6;
  op.Process(t, 0, &out);
  EXPECT_DOUBLE_EQ(op.GroupTotal(0), 5.0);
  EXPECT_DOUBLE_EQ(op.GroupTotal(1), 0.0);
  EXPECT_DOUBLE_EQ(op.SumFor(0, 12345), 0.0);
}

TEST(SumByKeyTest, StateRoundTrip) {
  SumByKeyOperator op(1, GroupField::kKey);
  Capture out;
  for (uint64_t k = 0; k < 50; ++k) {
    engine::Tuple t;
    t.key = k;
    t.num = static_cast<double>(k);
    op.Process(t, 0, &out);
  }
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_DOUBLE_EQ(op.GroupTotal(0), 0.0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_DOUBLE_EQ(op.SumFor(0, 49), 49.0);
  EXPECT_DOUBLE_EQ(op.GroupTotal(0), 49.0 * 50.0 / 2.0);
}

TEST(SumByKeyTest, DeserializeRejectsGarbage) {
  SumByKeyOperator op(1, GroupField::kKey);
  EXPECT_FALSE(op.DeserializeGroupState(0, "abc").ok());
}

}  // namespace
}  // namespace albic::ops
