#include "ops/topk.h"

#include <gtest/gtest.h>

#include <vector>

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

engine::Tuple ForId(uint64_t id) {
  engine::Tuple t;
  t.key = id;
  t.aux = id;
  return t;
}

TEST(TopKTest, CountsWithinWindow) {
  WindowedTopKOperator op(1, 3);
  Capture out;
  for (int i = 0; i < 5; ++i) op.Process(ForId(1), 0, &out);
  for (int i = 0; i < 2; ++i) op.Process(ForId(2), 0, &out);
  EXPECT_TRUE(out.tuples.empty());  // nothing until the window closes
  EXPECT_EQ(op.counts(0).at(1), 5);
  EXPECT_EQ(op.counts(0).at(2), 2);
}

TEST(TopKTest, WindowEmitsTopKAndResets) {
  WindowedTopKOperator op(1, 2);
  Capture out;
  for (int i = 0; i < 5; ++i) op.Process(ForId(10), 0, &out);
  for (int i = 0; i < 3; ++i) op.Process(ForId(20), 0, &out);
  for (int i = 0; i < 1; ++i) op.Process(ForId(30), 0, &out);
  op.OnWindow(0, &out);
  ASSERT_EQ(out.tuples.size(), 2u);  // k = 2
  EXPECT_EQ(out.tuples[0].aux, 10u);
  EXPECT_DOUBLE_EQ(out.tuples[0].num, 5.0);
  EXPECT_EQ(out.tuples[1].aux, 20u);
  EXPECT_TRUE(op.counts(0).empty());  // window reset
  ASSERT_EQ(op.last_window_top(0).size(), 2u);
  EXPECT_EQ(op.last_window_top(0)[0].first, 10u);
}

TEST(TopKTest, EmptyWindowEmitsNothing) {
  WindowedTopKOperator op(1, 3);
  Capture out;
  op.OnWindow(0, &out);
  EXPECT_TRUE(out.tuples.empty());
}

TEST(TopKTest, DeterministicTieBreakById) {
  WindowedTopKOperator op(1, 2);
  Capture out;
  op.Process(ForId(7), 0, &out);
  op.Process(ForId(3), 0, &out);
  op.Process(ForId(5), 0, &out);
  op.OnWindow(0, &out);
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.tuples[0].aux, 3u);  // equal counts: smaller id first
  EXPECT_EQ(out.tuples[1].aux, 5u);
}

TEST(TopKTest, GroupsAreIndependent) {
  WindowedTopKOperator op(2, 1);
  Capture out;
  op.Process(ForId(1), 0, &out);
  op.Process(ForId(2), 1, &out);
  EXPECT_EQ(op.counts(0).count(2), 0u);
  EXPECT_EQ(op.counts(1).count(1), 0u);
}

TEST(TopKTest, StateRoundTripPreservesCountsAndLastTop) {
  WindowedTopKOperator op(1, 2);
  Capture out;
  for (int i = 0; i < 4; ++i) op.Process(ForId(1), 0, &out);
  op.OnWindow(0, &out);
  op.Process(ForId(2), 0, &out);  // mid-window state
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_TRUE(op.counts(0).empty());
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_EQ(op.counts(0).at(2), 1);
  ASSERT_EQ(op.last_window_top(0).size(), 1u);
  EXPECT_EQ(op.last_window_top(0)[0].first, 1u);
}

TEST(TopKTest, SumNumModeMergesUpstreamSummaries) {
  // A global TopK merging per-cell summaries must add the incoming counts,
  // not count the summary tuples.
  WindowedTopKOperator op(1, 2, TopKCountMode::kSumNum);
  Capture out;
  engine::Tuple t = ForId(5);
  t.num = 7.0;  // upstream window count
  op.Process(t, 0, &out);
  t.num = 3.0;  // a second cell's summary for the same article
  op.Process(t, 0, &out);
  engine::Tuple u = ForId(6);
  u.num = 8.0;
  op.Process(u, 0, &out);
  op.OnWindow(0, &out);
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.tuples[0].aux, 5u);
  EXPECT_DOUBLE_EQ(out.tuples[0].num, 10.0);  // 7 + 3 merged
  EXPECT_EQ(out.tuples[1].aux, 6u);
}

TEST(TopKTest, FallsBackToPartitionKeyWithoutAux) {
  WindowedTopKOperator op(1, 1);
  Capture out;
  engine::Tuple t;
  t.key = 42;
  t.aux = 0;  // no auxiliary id
  op.Process(t, 0, &out);
  EXPECT_EQ(op.counts(0).at(42), 1);
}

}  // namespace
}  // namespace albic::ops
