#include "ops/join.h"

#include <gtest/gtest.h>

#include <vector>

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

engine::Tuple Rain(uint64_t route, double decade) {
  engine::Tuple t;
  t.key = route;
  t.num = decade;
  t.aux = RouteRainJoinOperator::kRainMark;
  return t;
}

engine::Tuple Delay(uint64_t route, double minutes) {
  engine::Tuple t;
  t.key = route;
  t.num = minutes;
  return t;
}

TEST(JoinTest, DelayJoinsLatestRainscore) {
  RouteRainJoinOperator op(1);
  Capture out;
  op.Process(Rain(5, 30.0), 0, &out);
  EXPECT_TRUE(out.tuples.empty());  // rain side is silent
  op.Process(Delay(5, 12.0), 0, &out);
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].key, 30u);  // keyed by decade
  EXPECT_DOUBLE_EQ(out.tuples[0].num, 12.0);
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 30), 12.0);
}

TEST(JoinTest, UnknownRouteFallsIntoDecadeZero) {
  RouteRainJoinOperator op(1);
  Capture out;
  op.Process(Delay(9, 8.0), 0, &out);
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 0), 8.0);
}

TEST(JoinTest, LatestScoreWins) {
  RouteRainJoinOperator op(1);
  Capture out;
  op.Process(Rain(1, 10.0), 0, &out);
  op.Process(Rain(1, 80.0), 0, &out);
  op.Process(Delay(1, 5.0), 0, &out);
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 80), 5.0);
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 10), 0.0);
}

TEST(JoinTest, DelaysAccumulatePerDecade) {
  RouteRainJoinOperator op(1);
  Capture out;
  op.Process(Rain(1, 40.0), 0, &out);
  op.Process(Rain(2, 40.0), 0, &out);
  op.Process(Delay(1, 5.0), 0, &out);
  op.Process(Delay(2, 7.0), 0, &out);
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 40), 12.0);
}

TEST(JoinTest, StateRoundTrip) {
  RouteRainJoinOperator op(1);
  Capture out;
  op.Process(Rain(1, 60.0), 0, &out);
  op.Process(Delay(1, 9.0), 0, &out);
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 60), 0.0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 60), 9.0);
  // The route->decade map also survived: new delays keep joining correctly.
  op.Process(Delay(1, 1.0), 0, &out);
  EXPECT_DOUBLE_EQ(op.DelayForDecade(0, 60), 10.0);
}

}  // namespace
}  // namespace albic::ops
