#include "ops/extract.h"

#include <gtest/gtest.h>

#include <vector>

namespace albic::ops {
namespace {

class Capture : public engine::Emitter {
 public:
  void Emit(const engine::Tuple& t) override { tuples.push_back(t); }
  std::vector<engine::Tuple> tuples;
};

TEST(ExtractTest, DropsOnTimeForwardsDelayed) {
  DelayExtractOperator op(1);
  Capture out;
  engine::Tuple on_time;
  on_time.key = 1;
  on_time.num = 0.0;
  op.Process(on_time, 0, &out);
  EXPECT_TRUE(out.tuples.empty());
  EXPECT_EQ(op.extracted(0), 0);

  engine::Tuple late;
  late.key = 2;
  late.num = 35.0;
  op.Process(late, 0, &out);
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(out.tuples[0].num, 35.0);
  EXPECT_EQ(op.extracted(0), 1);
}

TEST(ExtractTest, GroupsIndependent) {
  DelayExtractOperator op(2);
  Capture out;
  engine::Tuple late;
  late.num = 5.0;
  op.Process(late, 1, &out);
  EXPECT_EQ(op.extracted(0), 0);
  EXPECT_EQ(op.extracted(1), 1);
}

TEST(ExtractTest, StateRoundTrip) {
  DelayExtractOperator op(1);
  Capture out;
  engine::Tuple late;
  late.num = 5.0;
  op.Process(late, 0, &out);
  op.Process(late, 0, &out);
  std::string state = op.SerializeGroupState(0);
  op.ClearGroupState(0);
  EXPECT_EQ(op.extracted(0), 0);
  ASSERT_TRUE(op.DeserializeGroupState(0, state).ok());
  EXPECT_EQ(op.extracted(0), 2);
}

}  // namespace
}  // namespace albic::ops
