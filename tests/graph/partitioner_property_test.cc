// Property tests for the multilevel partitioner over randomized graphs.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/partitioner.h"

namespace albic::graph {
namespace {

class PartitionerProperty : public ::testing::TestWithParam<uint64_t> {};

Graph RandomGraph(uint64_t seed, int n, int avg_degree,
                  bool weighted_vertices) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int v = 0; v < n; ++v) {
    for (int k = 0; k < avg_degree; ++k) {
      int u = static_cast<int>(rng.Index(static_cast<size_t>(n)));
      if (u != v) edges.push_back({v, u, rng.Uniform(0.5, 3.0)});
    }
  }
  std::vector<double> weights;
  if (weighted_vertices) {
    for (int v = 0; v < n; ++v) weights.push_back(rng.Uniform(0.5, 4.0));
  }
  return Graph::FromEdges(n, edges, std::move(weights));
}

TEST_P(PartitionerProperty, AssignmentsValidAndWeightsConserved) {
  Graph g = RandomGraph(GetParam(), 150, 3, true);
  for (int parts : {2, 3, 5, 8}) {
    PartitionOptions opts;
    opts.num_parts = parts;
    opts.seed = GetParam();
    auto res = PartitionGraph(g, opts);
    ASSERT_TRUE(res.ok());
    double total = 0.0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      ASSERT_GE(res->assignment[v], 0);
      ASSERT_LT(res->assignment[v], parts);
    }
    for (double w : res->part_weights) total += w;
    EXPECT_NEAR(total, g.total_vertex_weight(), 1e-9);
    EXPECT_LE(res->edge_cut, g.EdgeCut(std::vector<int>(
                  static_cast<size_t>(g.num_vertices()), 0)) +
                  1e-9 + 2.0 * g.num_edges() * 3.0);
  }
}

TEST_P(PartitionerProperty, CutNeverExceedsTotalEdgeWeight) {
  Graph g = RandomGraph(GetParam() ^ 0x77, 120, 4, false);
  double total_weight = 0.0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    total_weight += g.incident_weight(v);
  }
  total_weight /= 2.0;
  PartitionOptions opts;
  opts.num_parts = 6;
  opts.seed = GetParam();
  auto res = PartitionGraph(g, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->edge_cut, total_weight + 1e-9);
  EXPECT_GE(res->edge_cut, 0.0);
}

TEST_P(PartitionerProperty, BalanceWithinToleranceOnUniformGraphs) {
  Graph g = RandomGraph(GetParam() ^ 0xb0b, 256, 4, false);
  PartitionOptions opts;
  opts.num_parts = 4;
  opts.imbalance = 0.1;
  opts.seed = GetParam();
  auto res = PartitionGraph(g, opts);
  ASSERT_TRUE(res.ok());
  const double target = g.total_vertex_weight() / 4.0;
  for (double w : res->part_weights) {
    EXPECT_LE(w, target * 1.25) << "part grossly overweight";
    EXPECT_GE(w, target * 0.6) << "part grossly underweight";
  }
}

TEST_P(PartitionerProperty, RingOfCliquesCutsBridgeEdges) {
  // k cliques of 6 vertices connected in a ring by single light edges: a
  // k-way partition should recover the cliques (cut ~ k bridges).
  const int k = 4, size = 6;
  std::vector<Edge> edges;
  for (int c = 0; c < k; ++c) {
    const int base = c * size;
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        edges.push_back({base + i, base + j, 8.0});
      }
    }
    edges.push_back({base, ((c + 1) % k) * size, 1.0});
  }
  Graph g = Graph::FromEdges(k * size, edges);
  PartitionOptions opts;
  opts.num_parts = k;
  opts.seed = GetParam();
  auto res = PartitionGraph(g, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_LE(res->edge_cut, 4.0 + 1e-9) << "cliques were split";
  // Every clique stays whole.
  for (int c = 0; c < k; ++c) {
    for (int i = 1; i < size; ++i) {
      EXPECT_EQ(res->assignment[c * size + i], res->assignment[c * size]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerProperty,
                         ::testing::Values(2, 11, 23, 47, 83));

}  // namespace
}  // namespace albic::graph
