#include "graph/graph.h"

#include <gtest/gtest.h>

namespace albic::graph {
namespace {

TEST(GraphTest, BuildsCsrFromEdges) {
  Graph g = Graph::FromEdges(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 1.0}});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
  EXPECT_DOUBLE_EQ(g.incident_weight(1), 5.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 4.0);  // default weights 1
}

TEST(GraphTest, MergesParallelEdges) {
  Graph g = Graph::FromEdges(2, {{0, 1, 2.0}, {1, 0, 3.0}, {0, 1, 1.0}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 6.0);
}

TEST(GraphTest, DropsSelfLoops) {
  Graph g = Graph::FromEdges(2, {{0, 0, 5.0}, {0, 1, 1.0}});
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, VertexWeights) {
  Graph g = Graph::FromEdges(3, {{0, 1, 1.0}}, {2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(g.vertex_weight(2), 4.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 9.0);
}

TEST(GraphTest, EdgeCutCountsCrossEdgesOnce) {
  Graph g = Graph::FromEdges(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 1.0}});
  // Parts {0,1} and {2,3}: only edge (1,2) crosses.
  EXPECT_DOUBLE_EQ(g.EdgeCut({0, 0, 1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(g.EdgeCut({0, 0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(g.EdgeCut({0, 1, 0, 1}), 6.0);
}

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, IsolatedVertices) {
  Graph g = Graph::FromEdges(3, {});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_TRUE(g.neighbors(1).empty());
  EXPECT_DOUBLE_EQ(g.incident_weight(0), 0.0);
}

}  // namespace
}  // namespace albic::graph
