#include "graph/partitioner.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace albic::graph {
namespace {

PartitionResult MustPartition(const Graph& g, PartitionOptions opts) {
  auto res = PartitionGraph(g, opts);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return *res;
}

TEST(PartitionerTest, RejectsBadOptions) {
  Graph g = Graph::FromEdges(2, {{0, 1, 1.0}});
  PartitionOptions opts;
  opts.num_parts = 0;
  EXPECT_FALSE(PartitionGraph(g, opts).ok());
  opts.num_parts = 2;
  opts.imbalance = -1.0;
  EXPECT_FALSE(PartitionGraph(g, opts).ok());
}

TEST(PartitionerTest, SinglePartTrivial) {
  Graph g = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  PartitionOptions opts;
  opts.num_parts = 1;
  PartitionResult r = MustPartition(g, opts);
  EXPECT_EQ(r.assignment, (std::vector<int>{0, 0, 0}));
  EXPECT_DOUBLE_EQ(r.edge_cut, 0.0);
}

TEST(PartitionerTest, TwoCliquesSplitCleanly) {
  // Two K4 cliques joined by a single light edge: the obvious bisection cuts
  // only that edge.
  std::vector<Edge> edges;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      edges.push_back({i, j, 10.0});
      edges.push_back({i + 4, j + 4, 10.0});
    }
  }
  edges.push_back({0, 4, 1.0});
  Graph g = Graph::FromEdges(8, edges);
  PartitionOptions opts;
  opts.num_parts = 2;
  opts.seed = 7;
  PartitionResult r = MustPartition(g, opts);
  EXPECT_DOUBLE_EQ(r.edge_cut, 1.0);
  EXPECT_DOUBLE_EQ(r.part_weights[0], 4.0);
  EXPECT_DOUBLE_EQ(r.part_weights[1], 4.0);
  // All clique members together.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(r.assignment[i], r.assignment[4]);
}

TEST(PartitionerTest, BalanceRespectedOnPath) {
  // A path of 32 unit vertices into 4 parts: each part should get ~8.
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < 32; ++i) edges.push_back({i, i + 1, 1.0});
  Graph g = Graph::FromEdges(32, edges);
  PartitionOptions opts;
  opts.num_parts = 4;
  opts.imbalance = 0.15;
  PartitionResult r = MustPartition(g, opts);
  for (double w : r.part_weights) {
    EXPECT_GE(w, 5.0);
    EXPECT_LE(w, 11.0);
  }
  // A path admits cuts of exactly 3; allow slack but demand quality.
  EXPECT_LE(r.edge_cut, 6.0);
}

TEST(PartitionerTest, WeightedVerticesBalanceByWeight) {
  // 6 vertices, one heavy: the heavy one should sit alone-ish.
  std::vector<double> w = {10.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  std::vector<Edge> edges;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) edges.push_back({i, j, 1.0});
  }
  Graph g = Graph::FromEdges(6, edges, w);
  PartitionOptions opts;
  opts.num_parts = 2;
  opts.imbalance = 0.35;
  PartitionResult r = MustPartition(g, opts);
  // Weight 15 total: targets 7.5/7.5. Heavy vertex (10) forces ~10 vs 5.
  const int heavy_part = r.assignment[0];
  double light_with_heavy = 0.0;
  for (int i = 1; i < 6; ++i) {
    if (r.assignment[i] == heavy_part) light_with_heavy += 1.0;
  }
  EXPECT_LE(light_with_heavy, 2.0);  // most light vertices on the other side
}

TEST(PartitionerTest, MorePartsThanVerticesDegenerates) {
  Graph g = Graph::FromEdges(3, {{0, 1, 1.0}});
  PartitionOptions opts;
  opts.num_parts = 5;
  PartitionResult r = MustPartition(g, opts);
  // Each vertex in its own part, ids within range.
  for (int v = 0; v < 3; ++v) {
    EXPECT_GE(r.assignment[v], 0);
    EXPECT_LT(r.assignment[v], 5);
  }
  EXPECT_NE(r.assignment[0], r.assignment[1]);
}

TEST(PartitionerTest, DisconnectedGraphHandled) {
  // Three disconnected triangles into 3 parts.
  std::vector<Edge> edges;
  for (int t = 0; t < 3; ++t) {
    const int b = t * 3;
    edges.push_back({b, b + 1, 5.0});
    edges.push_back({b + 1, b + 2, 5.0});
    edges.push_back({b, b + 2, 5.0});
  }
  Graph g = Graph::FromEdges(9, edges);
  PartitionOptions opts;
  opts.num_parts = 3;
  opts.seed = 3;
  PartitionResult r = MustPartition(g, opts);
  EXPECT_DOUBLE_EQ(r.edge_cut, 0.0);  // triangles should stay whole
}

TEST(PartitionerTest, LargeRandomGraphAllPartsPopulatedAndBalanced) {
  Rng rng(99);
  std::vector<Edge> edges;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 4; ++k) {
      int j = static_cast<int>(rng.Index(static_cast<size_t>(n)));
      if (j != i) edges.push_back({i, j, 1.0 + rng.NextDouble()});
    }
  }
  Graph g = Graph::FromEdges(n, edges);
  PartitionOptions opts;
  opts.num_parts = 8;
  opts.imbalance = 0.2;
  PartitionResult r = MustPartition(g, opts);
  const double target = g.total_vertex_weight() / 8.0;
  for (double w : r.part_weights) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, target * 1.5);  // generous, random graphs are hard
  }
  double recount = 0.0;
  for (double w : r.part_weights) recount += w;
  EXPECT_DOUBLE_EQ(recount, g.total_vertex_weight());
}

TEST(PartitionerTest, DeterministicForSameSeed) {
  std::vector<Edge> edges;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    edges.push_back({static_cast<int>(rng.Index(40)),
                     static_cast<int>(rng.Index(40)), 1.0});
  }
  Graph g = Graph::FromEdges(40, edges);
  PartitionOptions opts;
  opts.num_parts = 4;
  opts.seed = 11;
  PartitionResult a = MustPartition(g, opts);
  PartitionResult b = MustPartition(g, opts);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace albic::graph
