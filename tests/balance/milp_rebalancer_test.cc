#include "balance/milp_rebalancer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace albic::balance {
namespace {

using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::NodeId;
using engine::SystemSnapshot;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;

  Fixture(int nodes, std::vector<double> loads,
          std::vector<NodeId> placement = {})
      : cluster(nodes) {
    topo.AddOperator("op", static_cast<int>(loads.size()), 1 << 20);
    Assignment assign(static_cast<int>(loads.size()));
    for (KeyGroupId g = 0; g < assign.num_groups(); ++g) {
      assign.set_node(g, placement.empty()
                             ? g % nodes
                             : placement[static_cast<size_t>(g)]);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    snap.group_loads = std::move(loads);
    snap.migration_costs.assign(snap.group_loads.size(), 1.0);
    snap.node_loads.assign(static_cast<size_t>(nodes), 0.0);
  }
};

TEST(MilpRebalancerTest, ExactModeBalancesPerfectlyWhenPossible) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 0, 0});
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 2000;
  MilpRebalancer r(opts);
  auto plan = r.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_STREQ(r.last_mode_used(), "exact");
  EXPECT_NEAR(plan->predicted_load_distance, 0.0, 1e-6);
  EXPECT_EQ(plan->migrations.size(), 2u);  // exactly two groups move
}

TEST(MilpRebalancerTest, ExactRespectsMigrationCountConstraint) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 0, 0});
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 2000;
  MilpRebalancer r(opts);
  RebalanceConstraints cons;
  cons.max_migrations = 1;
  auto plan = r.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->migrations.size(), 1u);
  EXPECT_NEAR(plan->predicted_load_distance, 10.0, 1e-5);
}

TEST(MilpRebalancerTest, ExactRespectsMigrationCostConstraint) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 0, 0});
  f.snap.migration_costs = {3.0, 3.0, 3.0, 3.0};
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 2000;
  MilpRebalancer r(opts);
  RebalanceConstraints cons;
  cons.max_migration_cost = 3.0;
  auto plan = r.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  double cost = 0.0;
  for (const auto& m : plan->migrations) cost += f.snap.migration_costs[m.group];
  EXPECT_LE(cost, 3.0 + 1e-9);
}

TEST(MilpRebalancerTest, ExactMatchesBruteForceOptimum) {
  // 6 groups with uneven loads over 2 nodes, unrestricted: compare the MILP
  // distance to exhaustive enumeration of all 2^6 placements.
  std::vector<double> loads = {7, 3, 9, 4, 6, 2};
  Fixture f(2, loads, {0, 0, 0, 1, 1, 1});
  double best = 1e18;
  for (int mask = 0; mask < 64; ++mask) {
    double l0 = 0, l1 = 0;
    for (int g = 0; g < 6; ++g) {
      (mask & (1 << g)) != 0 ? l1 += loads[g] : l0 += loads[g];
    }
    const double mean = (l0 + l1) / 2.0;
    best = std::min(best,
                    std::max(std::fabs(l0 - mean), std::fabs(l1 - mean)));
  }
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 5000;
  MilpRebalancer r(opts);
  auto plan = r.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->predicted_load_distance, best, 1e-5);
}

// Lemma 2 (§4.3.1): the optimum moves ALL key groups off nodes marked for
// removal (given sufficient budget).
TEST(MilpRebalancerTest, Lemma2ExactDrainsMarkedNodes) {
  Fixture f(3, {10, 10, 10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(2).ok());
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 5000;
  MilpRebalancer r(opts);
  auto plan = r.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->assignment.count_on(2), 0);
}

// Lemma 1 (§4.3.1): no key group migrates from A into B.
TEST(MilpRebalancerTest, Lemma1NothingMovesIntoMarkedNodes) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> loads;
    for (int g = 0; g < 9; ++g) loads.push_back(rng.Uniform(2.0, 12.0));
    Fixture f(3, loads);
    ASSERT_TRUE(f.cluster.MarkForRemoval(1).ok());
    MilpRebalancerOptions opts;
    opts.mode = MilpRebalancerOptions::Mode::kExact;
    opts.time_budget_ms = 3000;
    opts.seed = 100 + trial;
    MilpRebalancer r(opts);
    RebalanceConstraints cons;
    cons.max_migrations = 3;  // tight budget: partial drain allowed
    auto plan = r.ComputePlan(f.snap, cons);
    ASSERT_TRUE(plan.ok());
    for (const auto& m : plan->migrations) {
      EXPECT_NE(m.to, 1) << "group migrated INTO a node marked for removal";
    }
  }
}

TEST(MilpRebalancerTest, HeuristicModeHandlesLargeInstances) {
  Rng rng(5);
  std::vector<double> loads;
  for (int g = 0; g < 400; ++g) loads.push_back(rng.Uniform(1.0, 6.0));
  Fixture f(20, loads);
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kAuto;  // 8000 cells -> heuristic
  opts.time_budget_ms = 30;
  MilpRebalancer r(opts);
  RebalanceConstraints cons;
  cons.max_migrations = 20;
  auto plan = r.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_STREQ(r.last_mode_used(), "heuristic");
  EXPECT_LE(plan->migrations.size(), 20u);
}

TEST(MilpRebalancerTest, HeuristicNearExactOnSmallInstance) {
  // On a small instance both paths should land within a group-size of each
  // other.
  std::vector<double> loads = {8, 6, 5, 4, 3, 2, 2, 1};
  Fixture f1(2, loads, {0, 0, 0, 0, 1, 1, 1, 1});
  Fixture f2(2, loads, {0, 0, 0, 0, 1, 1, 1, 1});
  MilpRebalancerOptions exact_opts;
  exact_opts.mode = MilpRebalancerOptions::Mode::kExact;
  exact_opts.time_budget_ms = 5000;
  MilpRebalancer exact(exact_opts);
  MilpRebalancerOptions heur_opts;
  heur_opts.mode = MilpRebalancerOptions::Mode::kHeuristic;
  heur_opts.time_budget_ms = 50;
  MilpRebalancer heur(heur_opts);
  auto pe = exact.ComputePlan(f1.snap, RebalanceConstraints{});
  auto ph = heur.ComputePlan(f2.snap, RebalanceConstraints{});
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(ph.ok());
  EXPECT_LE(ph->predicted_load_distance,
            pe->predicted_load_distance + 1.01);
}

TEST(MilpRebalancerTest, PinnedItemsHonoredInExactMode) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 1, 1});
  std::vector<BalanceItem> items = ItemsFromGroups(f.snap);
  items[0].pinned = 1;
  items[1].pinned = 1;
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 3000;
  MilpRebalancer r(opts);
  auto plan = r.ComputePlanForItems(f.snap, items, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->assignment.node_of(0), 1);
  EXPECT_EQ(plan->assignment.node_of(1), 1);
  // The remaining groups should rebalance toward node 0.
  EXPECT_EQ(plan->assignment.node_of(2), 0);
  EXPECT_EQ(plan->assignment.node_of(3), 0);
}

TEST(MilpRebalancerTest, HeterogeneousNodesBalancePercentNotRaw) {
  Topology topo;
  topo.AddOperator("op", 6, 1 << 20);
  Cluster cluster;
  cluster.AddNode(1.0);
  cluster.AddNode(2.0);
  SystemSnapshot snap;
  snap.topology = &topo;
  snap.cluster = &cluster;
  Assignment assign(6);
  for (KeyGroupId g = 0; g < 6; ++g) assign.set_node(g, 0);
  snap.assignment = assign;
  snap.group_loads.assign(6, 10.0);
  snap.migration_costs.assign(6, 1.0);
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 5000;
  MilpRebalancer r(opts);
  auto plan = r.ComputePlan(snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  // 60 raw load total; balanced percent = 20/40 raw (20% each): node 1
  // should hold twice the raw load of node 0.
  double raw[2] = {0, 0};
  for (KeyGroupId g = 0; g < 6; ++g) {
    raw[plan->assignment.node_of(g)] += 10.0;
  }
  EXPECT_NEAR(raw[1], 40.0, 1e-6);
  EXPECT_NEAR(raw[0], 20.0, 1e-6);
}

TEST(MilpRebalancerTest, PlanFromItemPlacementComputesDiff) {
  Fixture f(2, {5, 5}, {0, 0});
  std::vector<BalanceItem> items = ItemsFromGroups(f.snap);
  RebalancePlan plan =
      PlanFromItemPlacement(f.snap, items, {0, 1});
  ASSERT_EQ(plan.migrations.size(), 1u);
  EXPECT_EQ(plan.migrations[0].group, 1);
  EXPECT_EQ(plan.migrations[0].to, 1);
  EXPECT_NEAR(plan.predicted_load_distance, 0.0, 1e-9);
}

}  // namespace
}  // namespace albic::balance
