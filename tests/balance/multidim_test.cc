// Multi-dimensional load extension (§4.3.1): besides balancing the
// bottleneck resource, a cap on each node's secondary resource (e.g.
// memory) must hold.

#include <gtest/gtest.h>

#include "balance/milp_rebalancer.h"
#include "common/rng.h"

namespace albic::balance {
namespace {

using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::NodeId;
using engine::SystemSnapshot;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;

  Fixture(int nodes, std::vector<double> loads, std::vector<double> secondary,
          std::vector<NodeId> placement)
      : cluster(nodes) {
    topo.AddOperator("op", static_cast<int>(loads.size()), 1 << 20);
    Assignment assign(static_cast<int>(loads.size()));
    for (KeyGroupId g = 0; g < assign.num_groups(); ++g) {
      assign.set_node(g, placement[static_cast<size_t>(g)]);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    snap.group_loads = std::move(loads);
    snap.group_secondary_loads = std::move(secondary);
    snap.migration_costs.assign(snap.group_loads.size(), 1.0);
  }

  std::vector<double> SecondaryPerNode(const Assignment& a) const {
    std::vector<double> out(cluster.num_nodes_total(), 0.0);
    for (KeyGroupId g = 0; g < a.num_groups(); ++g) {
      out[a.node_of(g)] += snap.group_secondary_loads[g];
    }
    return out;
  }
};

TEST(MultiDimTest, ExactModeRespectsSecondaryCap) {
  // 4 groups: equal CPU, but two memory hogs. Without the cap the perfect
  // CPU balance puts both hogs anywhere; with cap 50 they must split.
  Fixture f(2, {10, 10, 10, 10}, {40, 40, 5, 5}, {0, 0, 0, 0});
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 3000;
  MilpRebalancer r(opts);
  RebalanceConstraints cons;
  cons.max_secondary_per_node = 50.0;
  auto plan = r.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<double> sec = f.SecondaryPerNode(plan->assignment);
  EXPECT_LE(sec[0], 50.0 + 1e-6);
  EXPECT_LE(sec[1], 50.0 + 1e-6);
  EXPECT_NEAR(plan->predicted_load_distance, 0.0, 1e-6);  // CPU still even
}

TEST(MultiDimTest, HeuristicModeRespectsSecondaryCap) {
  Rng rng(4);
  std::vector<double> loads, secondary;
  std::vector<NodeId> placement;
  for (int g = 0; g < 60; ++g) {
    loads.push_back(rng.Uniform(1.0, 6.0));
    secondary.push_back(rng.Uniform(1.0, 8.0));
    placement.push_back(static_cast<NodeId>(g % 6));
  }
  Fixture f(6, loads, secondary, placement);
  // Initial secondary per node is ~45; cap just above so moves are
  // constrained but feasible.
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kHeuristic;
  opts.time_budget_ms = 20;
  MilpRebalancer r(opts);
  RebalanceConstraints cons;
  cons.max_secondary_per_node = 60.0;
  auto plan = r.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  for (double s : f.SecondaryPerNode(plan->assignment)) {
    EXPECT_LE(s, 60.0 + 1e-6);
  }
}

TEST(MultiDimTest, CapOffMeansUnconstrained) {
  Fixture f(2, {10, 10}, {90, 90}, {0, 1});
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kExact;
  opts.time_budget_ms = 2000;
  MilpRebalancer r(opts);
  auto plan = r.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());  // no secondary rows, no infeasibility
}

TEST(MultiDimTest, InfeasibleCapFallsBackGracefully) {
  // Secondary cap below any single group: exact model infeasible; the
  // rebalancer must still return a plan (heuristic fallback keeps the
  // current placement rather than failing the adaptation round).
  Fixture f(2, {10, 10}, {80, 80}, {0, 1});
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kAuto;
  opts.time_budget_ms = 500;
  MilpRebalancer r(opts);
  RebalanceConstraints cons;
  cons.max_secondary_per_node = 10.0;
  auto plan = r.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->migrations.empty());  // nothing admissible
}

}  // namespace
}  // namespace albic::balance
