#include "balance/non_integrated.h"

#include <gtest/gtest.h>

#include <memory>

#include "balance/milp_rebalancer.h"

namespace albic::balance {
namespace {

using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::NodeId;
using engine::SystemSnapshot;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;

  Fixture(int nodes, std::vector<double> loads) : cluster(nodes) {
    topo.AddOperator("op", static_cast<int>(loads.size()), 1 << 20);
    Assignment assign(static_cast<int>(loads.size()));
    for (KeyGroupId g = 0; g < assign.num_groups(); ++g) {
      assign.set_node(g, g % nodes);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    snap.group_loads = std::move(loads);
    snap.migration_costs.assign(snap.group_loads.size(), 1.0);
  }
};

std::unique_ptr<NonIntegratedRebalancer> Make() {
  MilpRebalancerOptions opts;
  opts.mode = MilpRebalancerOptions::Mode::kHeuristic;
  opts.time_budget_ms = 10;
  return std::make_unique<NonIntegratedRebalancer>(
      std::make_unique<MilpRebalancer>(opts));
}

TEST(NonIntegratedTest, DrainPhaseIgnoresLoadBalance) {
  // Node 2 marked; drain moves its groups round-robin regardless of load.
  Fixture f(3, {10, 10, 10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(2).ok());
  auto r = Make();
  RebalanceConstraints cons;
  cons.max_migrations = 10;
  auto plan = r->ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  // All migrations originate from the marked node.
  for (const auto& m : plan->migrations) EXPECT_EQ(m.from, 2);
  EXPECT_EQ(plan->assignment.count_on(2), 0);
}

TEST(NonIntegratedTest, DrainRespectsBudget) {
  Fixture f(3, {10, 10, 10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(2).ok());
  auto r = Make();
  RebalanceConstraints cons;
  cons.max_migrations = 1;
  auto plan = r->ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->migrations.size(), 1u);
  EXPECT_EQ(plan->assignment.count_on(2), 1);  // partial drain
}

TEST(NonIntegratedTest, DelegatesWhenNoDrainPending) {
  Fixture f(2, {20, 0, 20, 0});  // node 0 overloaded (placement 0,1,0,1)
  auto r = Make();
  RebalanceConstraints cons;
  cons.max_migrations = 2;
  auto plan = r->ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  // The delegate balancer should act: distance improves below initial 20.
  EXPECT_LT(plan->predicted_load_distance, 20.0);
}

TEST(NonIntegratedTest, CostLimitedDrain) {
  Fixture f(2, {10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(1).ok());
  f.snap.migration_costs = {1.0, 1.0, 3.0, 3.0};
  auto r = Make();
  RebalanceConstraints cons;
  cons.max_migration_cost = 4.0;
  auto plan = r->ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  double cost = 0.0;
  for (const auto& m : plan->migrations) cost += f.snap.migration_costs[m.group];
  EXPECT_LE(cost, 4.0 + 1e-9);
}

}  // namespace
}  // namespace albic::balance
