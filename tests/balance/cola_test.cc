#include "balance/cola_rebalancer.h"

#include <gtest/gtest.h>

#include "engine/load_model.h"

namespace albic::balance {
namespace {

using engine::Assignment;
using engine::Cluster;
using engine::CommMatrix;
using engine::KeyGroupId;
using engine::SystemSnapshot;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  CommMatrix comm;
  SystemSnapshot snap;

  explicit Fixture(int nodes, int pairs) : cluster(nodes), comm(2 * pairs) {
    topo.AddOperator("up", pairs, 1 << 20);
    topo.AddOperator("down", pairs, 1 << 20);
    EXPECT_TRUE(topo.AddStream(0, 1,
                               engine::PartitioningPattern::kOneToOne).ok());
    Assignment assign(2 * pairs);
    // Adversarial: partners apart.
    for (KeyGroupId g = 0; g < pairs; ++g) {
      assign.set_node(g, g % nodes);
      assign.set_node(pairs + g, (g + nodes / 2) % nodes);
      comm.Add(g, pairs + g, 10.0);  // 1-1 heavy pairs
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.comm = &comm;
    snap.assignment = assign;
    snap.group_loads.assign(static_cast<size_t>(2 * pairs), 5.0);
    snap.migration_costs.assign(static_cast<size_t>(2 * pairs), 1.0);
  }
};

TEST(ColaTest, CollocatesOneToOnePairsImmediately) {
  Fixture f(4, 20);
  ColaRebalancer cola;
  auto plan = cola.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  const double collocation =
      engine::CollocationPercent(f.comm, plan->assignment);
  EXPECT_GT(collocation, 85.0);  // nearly all pairs together
}

TEST(ColaTest, AchievesTargetLoadDistance) {
  Fixture f(4, 20);
  ColaOptions opts;
  opts.target_load_distance = 10.0;
  ColaRebalancer cola(opts);
  auto plan = cola.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->predicted_load_distance, 10.0 + 1e-9);
}

TEST(ColaTest, IgnoresMigrationBudget) {
  // COLA is a static optimizer: it replans from scratch regardless of the
  // budget (that is exactly why it migrates ~200 groups per period in Fig
  // 12).
  Fixture f(4, 20);
  ColaRebalancer cola;
  RebalanceConstraints cons;
  cons.max_migrations = 1;
  auto plan = cola.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->migrations.size(), 1u);
}

TEST(ColaTest, WorksWithoutCommMatrix) {
  Fixture f(4, 10);
  f.snap.comm = nullptr;
  ColaRebalancer cola;
  auto plan = cola.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->predicted_load_distance, 10.0 + 1e-9);
}

TEST(ColaTest, ErrorsWithoutRetainedNodes) {
  Fixture f(2, 4);
  ASSERT_TRUE(f.cluster.MarkForRemoval(0).ok());
  ASSERT_TRUE(f.cluster.MarkForRemoval(1).ok());
  ColaRebalancer cola;
  EXPECT_FALSE(cola.ComputePlan(f.snap, RebalanceConstraints{}).ok());
}

}  // namespace
}  // namespace albic::balance
