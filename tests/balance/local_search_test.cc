#include "balance/local_search.h"

#include <gtest/gtest.h>

#include "balance/balance_item.h"
#include "common/rng.h"
#include "engine/migration.h"

namespace albic::balance {
namespace {

using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::NodeId;
using engine::SystemSnapshot;
using engine::Topology;

/// Builds a snapshot with `loads[g]` on an even round-robin assignment.
struct Fixture {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;

  Fixture(int nodes, std::vector<double> loads,
          std::vector<NodeId> placement = {})
      : cluster(nodes) {
    topo.AddOperator("op", static_cast<int>(loads.size()), 1 << 20);
    Assignment assign(static_cast<int>(loads.size()));
    for (KeyGroupId g = 0; g < assign.num_groups(); ++g) {
      assign.set_node(g, placement.empty()
                             ? g % nodes
                             : placement[static_cast<size_t>(g)]);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    snap.group_loads = std::move(loads);
    snap.migration_costs.assign(snap.group_loads.size(), 1.0);
    snap.node_loads.assign(static_cast<size_t>(nodes), 0.0);
  }
};

LocalSearchSolution MustSolve(const Fixture& f,
                              const RebalanceConstraints& cons,
                              double budget_ms = 20.0) {
  LocalSearchOptions opts;
  opts.time_budget_ms = budget_ms;
  opts.seed = 7;
  auto res = LocalSearchSolver::Solve(f.snap, ItemsFromGroups(f.snap), cons,
                                      opts);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return *res;
}

TEST(LocalSearchTest, BalancesObviousImbalance) {
  // All load on node 0; plenty of budget: should spread to distance ~0.
  Fixture f(4, {10, 10, 10, 10, 10, 10, 10, 10},
            {0, 0, 0, 0, 0, 0, 0, 0});
  RebalanceConstraints cons;
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_NEAR(sol.load_distance, 0.0, 1e-6);
}

TEST(LocalSearchTest, RespectsCountBudget) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 0, 0});
  RebalanceConstraints cons;
  cons.max_migrations = 1;
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_LE(sol.used_count, 1);
  // One move of 10: loads 30/10, mean 20, d = 10.
  EXPECT_NEAR(sol.load_distance, 10.0, 1e-6);
}

TEST(LocalSearchTest, RespectsCostBudget) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 0, 0});
  f.snap.migration_costs = {5.0, 5.0, 5.0, 5.0};
  RebalanceConstraints cons;
  cons.max_migration_cost = 5.0;  // exactly one move affordable
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_LE(sol.used_cost, 5.0 + 1e-9);
  EXPECT_NEAR(sol.load_distance, 10.0, 1e-6);
}

TEST(LocalSearchTest, ZeroBudgetKeepsAssignment) {
  Fixture f(2, {10, 10, 20}, {0, 0, 1});
  RebalanceConstraints cons;
  cons.max_migrations = 0;
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_EQ(sol.used_count, 0);
  for (size_t i = 0; i < sol.item_node.size(); ++i) {
    EXPECT_EQ(sol.item_node[i],
              f.snap.assignment.node_of(static_cast<KeyGroupId>(i)));
  }
}

TEST(LocalSearchTest, DrainsMarkedNodesFirst) {
  Fixture f(3, {10, 10, 10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(2).ok());
  RebalanceConstraints cons;
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_NEAR(sol.drain_load, 0.0, 1e-9);
  for (NodeId n : sol.item_node) EXPECT_NE(n, 2);
}

TEST(LocalSearchTest, DrainPrioritizedUnderTightBudget) {
  // Node 2 is marked and holds 2 groups; budget allows exactly 2 moves.
  Fixture f(3, {10, 10, 10, 10, 10, 10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(2).ok());
  RebalanceConstraints cons;
  cons.max_migrations = 2;
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_NEAR(sol.drain_load, 0.0, 1e-9);  // both moves used on the drain
}

TEST(LocalSearchTest, ForceDrainsLastMarkedNodeFromBalancedEndGame) {
  // The fig-5 1-overloaded-node end-game: 4 retained nodes balanced at 40
  // (4 groups of 10 each), and one marked node holding a single residual
  // group of load 5. mean = 165/4 = 41.25, distance = 1.25; moving the
  // residual onto any retained node raises it to 45 and the distance to
  // 3.75 — strictly worse, so greedy improvement parks there forever and
  // scale-in never finishes. The completion pass must drain it anyway.
  std::vector<double> loads(17, 10.0);
  loads[16] = 5.0;
  std::vector<NodeId> placement(17);
  for (int g = 0; g < 16; ++g) placement[g] = g % 4;
  placement[16] = 4;
  Fixture f(5, loads, placement);
  ASSERT_TRUE(f.cluster.MarkForRemoval(4).ok());
  LocalSearchSolution sol = MustSolve(f, RebalanceConstraints{});
  EXPECT_NEAR(sol.drain_load, 0.0, 1e-9);
  EXPECT_NE(sol.item_node[16], 4);
  // The reported distance reflects the post-drain placement.
  EXPECT_NEAR(sol.load_distance, 3.75, 1e-6);
}

TEST(LocalSearchTest, ForceDrainRespectsBudget) {
  // Same end-game but with a zero budget: the residual cannot move, and
  // the completion pass must not blow the constraint to force it.
  std::vector<double> loads(17, 10.0);
  loads[16] = 5.0;
  std::vector<NodeId> placement(17);
  for (int g = 0; g < 16; ++g) placement[g] = g % 4;
  placement[16] = 4;
  Fixture f(5, loads, placement);
  ASSERT_TRUE(f.cluster.MarkForRemoval(4).ok());
  RebalanceConstraints cons;
  cons.max_migrations = 0;
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_EQ(sol.used_count, 0);
  EXPECT_EQ(sol.item_node[16], 4);
  EXPECT_NEAR(sol.drain_load, 5.0, 1e-9);
}

TEST(LocalSearchTest, ForceDrainSkipsUnaffordableItemForLighterOne) {
  // End-game where BOTH residual drain moves worsen the distance (so the
  // greedy leaves them to the completion pass): 10 retained nodes balanced
  // at 40, marked node 10 holding a load-4 group with migration cost 100
  // (unaffordable under the cost budget of 5) and a load-2 group with cost
  // 1. The mean is inflated by only 6/10 = 0.6, so moving either group
  // overshoots. The completion pass must not abort at the unaffordable
  // heaviest item — the cheap group still fits the budget and must leave.
  std::vector<double> loads(42, 10.0);
  loads[40] = 4.0;
  loads[41] = 2.0;
  std::vector<NodeId> placement(42);
  for (int g = 0; g < 40; ++g) placement[g] = g % 10;
  placement[40] = 10;
  placement[41] = 10;
  Fixture f(11, loads, placement);
  f.snap.migration_costs.assign(42, 1.0);
  f.snap.migration_costs[40] = 100.0;
  ASSERT_TRUE(f.cluster.MarkForRemoval(10).ok());
  RebalanceConstraints cons;
  cons.max_migration_cost = 5.0;
  LocalSearchSolution sol = MustSolve(f, cons);
  EXPECT_EQ(sol.item_node[40], 10) << "the cost-100 group is unaffordable";
  EXPECT_NE(sol.item_node[41], 10) << "the cost-1 group must still drain";
  EXPECT_NEAR(sol.drain_load, 4.0, 1e-9);
  EXPECT_LE(sol.used_cost, 5.0 + 1e-9);
}

TEST(LocalSearchTest, PinnedItemsAreForcedAndImmovable) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 1, 1});
  std::vector<BalanceItem> items = ItemsFromGroups(f.snap);
  items[0].pinned = 1;  // force group 0 onto node 1
  RebalanceConstraints cons;
  LocalSearchOptions opts;
  opts.time_budget_ms = 10.0;
  auto res = LocalSearchSolver::Solve(f.snap, items, cons, opts);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->item_node[0], 1);
}

TEST(LocalSearchTest, PinToInactiveNodeRejected) {
  Fixture f(2, {10, 10});
  ASSERT_TRUE(f.cluster.Terminate(1).ok());
  std::vector<BalanceItem> items = ItemsFromGroups(f.snap);
  items[0].pinned = 1;
  auto res = LocalSearchSolver::Solve(f.snap, items, RebalanceConstraints{},
                                      LocalSearchOptions{});
  EXPECT_FALSE(res.ok());
}

TEST(LocalSearchTest, HeterogeneousCapacityGetsProportionalLoad) {
  // Node 1 has 3x the capacity: it should end with ~3x the raw load so that
  // percentage loads match.
  Topology topo;
  topo.AddOperator("op", 8, 1 << 20);
  Cluster cluster;
  cluster.AddNode(1.0);
  cluster.AddNode(3.0);
  SystemSnapshot snap;
  snap.topology = &topo;
  snap.cluster = &cluster;
  Assignment assign(8);
  for (KeyGroupId g = 0; g < 8; ++g) assign.set_node(g, 0);
  snap.assignment = assign;
  snap.group_loads.assign(8, 10.0);
  snap.migration_costs.assign(8, 1.0);
  auto res = LocalSearchSolver::Solve(snap, ItemsFromGroups(snap),
                                      RebalanceConstraints{},
                                      LocalSearchOptions{});
  ASSERT_TRUE(res.ok());
  double raw[2] = {0, 0};
  for (size_t i = 0; i < res->item_node.size(); ++i) {
    raw[res->item_node[i]] += 10.0;
  }
  EXPECT_NEAR(raw[1] / 3.0, raw[0], 10.0 + 1e-9);  // within one group size
}

TEST(LocalSearchTest, MultiGroupItemsMoveAtomically) {
  Fixture f(2, {10, 10, 10, 10}, {0, 0, 0, 0});
  std::vector<BalanceItem> items;
  BalanceItem pair;
  pair.groups = {0, 1};
  pair.load = 20.0;
  items.push_back(pair);
  BalanceItem a;
  a.groups = {2};
  a.load = 10.0;
  items.push_back(a);
  BalanceItem b;
  b.groups = {3};
  b.load = 10.0;
  items.push_back(b);
  auto res = LocalSearchSolver::Solve(f.snap, items, RebalanceConstraints{},
                                      LocalSearchOptions{});
  ASSERT_TRUE(res.ok());
  // The pair's two groups stay together wherever it lands.
  EXPECT_NEAR(res->load_distance, 0.0, 1e-6);
}

TEST(LocalSearchTest, ErrorsWithoutRetainedNodes) {
  Fixture f(1, {10});
  ASSERT_TRUE(f.cluster.MarkForRemoval(0).ok());
  auto res = LocalSearchSolver::Solve(f.snap, ItemsFromGroups(f.snap),
                                      RebalanceConstraints{},
                                      LocalSearchOptions{});
  EXPECT_FALSE(res.ok());
}

TEST(LocalSearchTest, MoreBudgetNeverWorse) {
  // Anytime property: 20ms solution is at least as good as 1ms (same seed).
  std::vector<double> loads;
  Rng rng(3);
  for (int i = 0; i < 120; ++i) loads.push_back(rng.Uniform(1.0, 9.0));
  Fixture f(10, loads);
  RebalanceConstraints cons;
  cons.max_migrations = 15;
  LocalSearchSolution fast = MustSolve(f, cons, 1.0);
  LocalSearchSolution slow = MustSolve(f, cons, 25.0);
  EXPECT_LE(slow.load_distance, fast.load_distance + 1e-9);
}

}  // namespace
}  // namespace albic::balance
