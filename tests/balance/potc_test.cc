#include "balance/potc.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/stats_util.h"

namespace albic::balance {
namespace {

std::vector<PotcKey> UniformKeys(int n, double rate) {
  std::vector<PotcKey> keys;
  for (int i = 0; i < n; ++i) {
    PotcKey k;
    k.key = static_cast<uint64_t>(i) * 2654435761ULL;
    k.rate = rate;
    keys.push_back(k);
  }
  return keys;
}

TEST(PotcTest, ConservesWorkPlusOverhead) {
  engine::Cluster cluster(4);
  PotcOptions opts;
  opts.split_overhead = 0.1;
  opts.merge_cost_factor = 0.0;
  PotcModel model(opts);
  std::vector<PotcKey> keys = UniformKeys(100, 1.0);
  std::vector<double> loads = model.ComputeNodeLoads(keys, cluster, 1);
  const double total = std::accumulate(loads.begin(), loads.end(), 0.0);
  // 100 rate + 10% split overhead.
  EXPECT_NEAR(total, 110.0, 1e-9);
}

TEST(PotcTest, TwoChoiceBalancesPrimaryWork) {
  engine::Cluster cluster(4);
  PotcOptions opts;
  opts.split_overhead = 0.0;
  opts.merge_cost_factor = 0.0;
  PotcModel model(opts);
  std::vector<PotcKey> keys = UniformKeys(400, 1.0);
  std::vector<double> loads = model.ComputeNodeLoads(keys, cluster, 1);
  // Greedy two-choice on 400 uniform keys over 4 nodes: near-even.
  EXPECT_LT(MaxAbsDeviation(loads), 2.5);
}

TEST(PotcTest, MergePeriodsAddSkewedLoad) {
  // The skew comes from hot keys: their (large) state merges land on a
  // single h1 worker (§2.2: "the merge step cannot be balanced"). Use a
  // Zipf-skewed key population, as the Wikipedia job produces.
  engine::Cluster cluster(4);
  PotcOptions opts;
  opts.split_overhead = 0.0;
  opts.merge_cost_factor = 0.5;
  opts.merge_every_periods = 2;
  PotcModel model(opts);
  std::vector<PotcKey> keys =
      SplitGroupsIntoKeys(std::vector<double>(10, 10.0), 10, 1.4, 99);
  std::vector<double> merge_loads = model.ComputeNodeLoads(keys, cluster, 0);
  std::vector<double> quiet_loads = model.ComputeNodeLoads(keys, cluster, 1);
  const double merge_total =
      std::accumulate(merge_loads.begin(), merge_loads.end(), 0.0);
  const double quiet_total =
      std::accumulate(quiet_loads.begin(), quiet_loads.end(), 0.0);
  EXPECT_GT(merge_total, quiet_total);  // merge adds real work
  // Merge work lands on h1 only: imbalance on merge periods is worse.
  EXPECT_GT(MaxAbsDeviation(merge_loads), MaxAbsDeviation(quiet_loads));
}

TEST(PotcTest, DeterministicAcrossCalls) {
  engine::Cluster cluster(3);
  PotcModel model;
  std::vector<PotcKey> keys = UniformKeys(50, 2.0);
  EXPECT_EQ(model.ComputeNodeLoads(keys, cluster, 3),
            model.ComputeNodeLoads(keys, cluster, 3));
}

TEST(PotcTest, RespectsMarkedNodes) {
  engine::Cluster cluster(3);
  ASSERT_TRUE(cluster.MarkForRemoval(2).ok());
  PotcModel model;
  std::vector<double> loads =
      model.ComputeNodeLoads(UniformKeys(30, 1.0), cluster, 1);
  EXPECT_DOUBLE_EQ(loads[2], 0.0);  // marked nodes receive nothing
}

TEST(PotcTest, SplitGroupsIntoKeysPreservesTotalRate) {
  std::vector<double> group_loads = {10.0, 20.0, 5.0};
  std::vector<PotcKey> keys = SplitGroupsIntoKeys(group_loads, 8, 1.0, 3);
  EXPECT_EQ(keys.size(), 24u);
  double total = 0.0;
  for (const PotcKey& k : keys) total += k.rate;
  EXPECT_NEAR(total, 35.0, 1e-9);
}

}  // namespace
}  // namespace albic::balance
