#include "balance/flux_rebalancer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/load_model.h"

namespace albic::balance {
namespace {

using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::NodeId;
using engine::SystemSnapshot;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;

  Fixture(int nodes, std::vector<double> loads, std::vector<NodeId> placement)
      : cluster(nodes) {
    topo.AddOperator("op", static_cast<int>(loads.size()), 1 << 20);
    Assignment assign(static_cast<int>(loads.size()));
    for (KeyGroupId g = 0; g < assign.num_groups(); ++g) {
      assign.set_node(g, placement[static_cast<size_t>(g)]);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    snap.group_loads = std::move(loads);
    snap.migration_costs.assign(snap.group_loads.size(), 1.0);
  }
};

TEST(FluxTest, MovesBiggestSuitableGroupToLightestNode) {
  // Node 0: groups of 8 and 3 (load 11); node 1: 2 (load 2). Gap 9: the
  // biggest suitable (< 9) is 8.
  Fixture f(2, {8, 3, 2}, {0, 0, 1});
  FluxRebalancer flux;
  RebalanceConstraints cons;
  cons.max_migrations = 1;
  auto plan = flux.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->migrations.size(), 1u);
  EXPECT_EQ(plan->migrations[0].group, 0);  // the 8-load group
  EXPECT_EQ(plan->migrations[0].to, 1);
}

TEST(FluxTest, SkipsUnsuitablyLargeGroups) {
  // Gap is 6; the only group on the heavy node weighs 10 > 6: no move.
  Fixture f(2, {10, 4}, {0, 1});
  FluxRebalancer flux;
  RebalanceConstraints cons;
  cons.max_migrations = 5;
  auto plan = flux.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->migrations.empty());
}

TEST(FluxTest, RespectsMigrationLimit) {
  Fixture f(2, {5, 5, 5, 5, 5, 5}, {0, 0, 0, 0, 0, 0});
  FluxRebalancer flux;
  RebalanceConstraints cons;
  cons.max_migrations = 2;
  auto plan = flux.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->migrations.size(), 2u);
}

TEST(FluxTest, RespectsCostLimit) {
  Fixture f(2, {5, 5, 5, 5}, {0, 0, 0, 0});
  f.snap.migration_costs = {2.0, 2.0, 2.0, 2.0};
  FluxRebalancer flux;
  RebalanceConstraints cons;
  cons.max_migration_cost = 4.0;
  auto plan = flux.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->migrations.size(), 2u);
}

TEST(FluxTest, SingleNodeNoOp) {
  Fixture f(1, {5, 5}, {0, 0});
  FluxRebalancer flux;
  auto plan = flux.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->migrations.empty());
}

TEST(FluxTest, ImprovesButUsuallyWorseThanUnlimitedRebalance) {
  // Random instance: Flux must not increase the load distance.
  Rng rng(17);
  std::vector<double> loads;
  std::vector<NodeId> placement;
  for (int g = 0; g < 60; ++g) {
    loads.push_back(rng.Uniform(1.0, 9.0));
    placement.push_back(static_cast<NodeId>(rng.Index(6)));
  }
  Fixture f(6, loads, placement);
  // Distance before.
  std::vector<double> node_loads(6, 0.0);
  for (int g = 0; g < 60; ++g) node_loads[placement[g]] += loads[g];
  const double before = engine::LoadDistance(node_loads, f.cluster);

  FluxRebalancer flux;
  RebalanceConstraints cons;
  cons.max_migrations = 10;
  auto plan = flux.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->predicted_load_distance, before + 1e-9);
}

}  // namespace
}  // namespace albic::balance
