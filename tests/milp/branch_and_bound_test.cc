#include "milp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace albic::milp {
namespace {

MilpSolution MustSolve(const MilpModel& m,
                       BranchAndBoundSolver::Options opts = {}) {
  auto res = BranchAndBoundSolver::Solve(m, opts);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return *res;
}

TEST(BranchAndBoundTest, IntegralRelaxationShortCircuits) {
  MilpModel m;
  int x = m.AddInteger(0, 10, 1.0);
  m.AddConstraint({{x, 1}}, lp::Sense::kGe, 3.0);
  MilpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_EQ(s.nodes_explored, 1);
}

TEST(BranchAndBoundTest, KnapsackSmall) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a + c (17) vs
  // b + c (20, weight 6 ok) -> optimal 20.
  MilpModel m;
  m.set_objective_sense(lp::ObjSense::kMaximize);
  int a = m.AddBinary(10.0);
  int b = m.AddBinary(13.0);
  int c = m.AddBinary(7.0);
  m.AddConstraint({{a, 3}, {b, 4}, {c, 2}}, lp::Sense::kLe, 6.0);
  MilpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-7);
  EXPECT_NEAR(s.values[b], 1.0, 1e-7);
  EXPECT_NEAR(s.values[c], 1.0, 1e-7);
}

TEST(BranchAndBoundTest, KnapsackAgainstBruteForce) {
  // 10-item knapsack, exhaustive reference.
  const std::vector<double> value = {12, 7,  9,  14, 5, 11, 3, 8, 10, 6};
  const std::vector<double> weight = {4,  2,  3,  5,  1, 4,  1, 3, 4,  2};
  const double cap = 12;
  double best = 0.0;
  for (int mask = 0; mask < (1 << 10); ++mask) {
    double v = 0, w = 0;
    for (int i = 0; i < 10; ++i) {
      if (mask & (1 << i)) {
        v += value[i];
        w += weight[i];
      }
    }
    if (w <= cap) best = std::max(best, v);
  }
  MilpModel m;
  m.set_objective_sense(lp::ObjSense::kMaximize);
  std::vector<int> x;
  for (int i = 0; i < 10; ++i) x.push_back(m.AddBinary(value[i]));
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 10; ++i) row.push_back({x[i], weight[i]});
  m.AddConstraint(std::move(row), lp::Sense::kLe, cap);
  MilpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, best, 1e-6);
}

TEST(BranchAndBoundTest, PureIntegerRounding) {
  // min x + y s.t. 2x + 2y >= 5, integer -> (x+y) >= 2.5 -> 3.
  MilpModel m;
  int x = m.AddInteger(0, 10, 1.0);
  int y = m.AddInteger(0, 10, 1.0);
  m.AddConstraint({{x, 2}, {y, 2}}, lp::Sense::kGe, 5.0);
  MilpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(BranchAndBoundTest, MixedIntegerContinuous) {
  // min 3x + 2y, x integer, y continuous, x + y >= 3.6, y <= 1.2
  // -> x >= 2.4 -> x = 3 possible with y = 0.6: cost 10.2; or x=3,y=0.6.
  // Better: x = 3, y = 0.6 -> 10.2; x = 4, y = 0 -> 12. Optimal 10.2.
  MilpModel m;
  int x = m.AddInteger(0, 10, 3.0);
  int y = m.AddContinuous(0, 1.2, 2.0);
  m.AddConstraint({{x, 1}, {y, 1}}, lp::Sense::kGe, 3.6);
  MilpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.2, 1e-6);
  EXPECT_NEAR(s.values[x], 3.0, 1e-7);
  EXPECT_NEAR(s.values[y], 0.6, 1e-6);
}

TEST(BranchAndBoundTest, InfeasibleIntegerButFeasibleLp) {
  // 0.4 <= x <= 0.6 has LP solutions but no integer ones.
  MilpModel m;
  int x = m.AddInteger(0, 1, 1.0);
  m.AddConstraint({{x, 1}}, lp::Sense::kGe, 0.4);
  m.AddConstraint({{x, 1}}, lp::Sense::kLe, 0.6);
  MilpSolution s = MustSolve(m);
  EXPECT_EQ(s.status, MilpStatus::kInfeasible);
}

TEST(BranchAndBoundTest, InfeasibleLp) {
  MilpModel m;
  int x = m.AddBinary(1.0);
  m.AddConstraint({{x, 1}}, lp::Sense::kGe, 2.0);
  MilpSolution s = MustSolve(m);
  EXPECT_EQ(s.status, MilpStatus::kInfeasible);
}

TEST(BranchAndBoundTest, AssignmentProblemExact) {
  // 3 jobs x 3 machines, minimize cost; compare to brute force (6 perms).
  const double c[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  double best = 1e9;
  int perm[3] = {0, 1, 2};
  std::vector<int> p = {0, 1, 2};
  do {
    double v = c[0][p[0]] + c[1][p[1]] + c[2][p[2]];
    best = std::min(best, v);
  } while (std::next_permutation(p.begin(), p.end()));
  (void)perm;

  MilpModel m;
  int x[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) x[i][j] = m.AddBinary(c[i][j]);
  }
  for (int i = 0; i < 3; ++i) {
    m.AddConstraint({{x[i][0], 1}, {x[i][1], 1}, {x[i][2], 1}},
                    lp::Sense::kEq, 1.0);
    m.AddConstraint({{x[0][i], 1}, {x[1][i], 1}, {x[2][i], 1}},
                    lp::Sense::kEq, 1.0);
  }
  MilpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, best, 1e-6);
}

TEST(BranchAndBoundTest, NodeLimitReturnsFeasible) {
  // A knapsack big enough to need branching, with max_nodes = 1: should
  // still return the rounding-heuristic incumbent as kFeasible (or prove
  // optimal if lucky).
  MilpModel m;
  m.set_objective_sense(lp::ObjSense::kMaximize);
  std::vector<int> x;
  for (int i = 0; i < 12; ++i) x.push_back(m.AddBinary(7.0 + (i * 13) % 11));
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < 12; ++i) row.push_back({x[i], 2.0 + (i * 7) % 5});
  m.AddConstraint(std::move(row), lp::Sense::kLe, 17.0);
  BranchAndBoundSolver::Options opts;
  opts.max_nodes = 1;
  MilpSolution s = MustSolve(m, opts);
  EXPECT_TRUE(s.status == MilpStatus::kFeasible ||
              s.status == MilpStatus::kOptimal ||
              s.status == MilpStatus::kNoSolutionFound);
  if (s.status != MilpStatus::kNoSolutionFound) {
    EXPECT_TRUE(m.IsFeasible(s.values));
    EXPECT_LE(s.objective, s.best_bound + 1e-6);  // maximize: bound >= obj
  }
}

TEST(BranchAndBoundTest, IsFeasibleChecksEverything) {
  MilpModel m;
  int x = m.AddBinary(1.0);
  int y = m.AddContinuous(0, 2, 1.0);
  m.AddConstraint({{x, 1}, {y, 1}}, lp::Sense::kLe, 2.0);
  EXPECT_TRUE(m.IsFeasible({1.0, 1.0}));
  EXPECT_FALSE(m.IsFeasible({0.5, 1.0}));  // fractional binary
  EXPECT_FALSE(m.IsFeasible({1.0, 3.0}));  // bound violation
  EXPECT_FALSE(m.IsFeasible({1.0, 1.5}));  // constraint violation
  EXPECT_FALSE(m.IsFeasible({1.0}));       // wrong arity
}

TEST(BranchAndBoundTest, EqualityConstrainedInteger) {
  // x + y = 7, min 2x + y, x,y integer in [0,7] -> x = 0, y = 7, obj 7.
  MilpModel m;
  int x = m.AddInteger(0, 7, 2.0);
  int y = m.AddInteger(0, 7, 1.0);
  m.AddConstraint({{x, 1}, {y, 1}}, lp::Sense::kEq, 7.0);
  MilpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, MilpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
  EXPECT_NEAR(s.values[x], 0.0, 1e-7);
}

}  // namespace
}  // namespace albic::milp
