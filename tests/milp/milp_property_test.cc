// Property tests: branch & bound against brute-force enumeration on random
// binary programs.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "milp/branch_and_bound.h"

namespace albic::milp {
namespace {

class MilpProperty : public ::testing::TestWithParam<uint64_t> {};

struct RandomBip {
  MilpModel model;
  std::vector<double> costs;
  std::vector<std::vector<double>> rows;  // coefficient per var per row
  std::vector<double> rhs;
  std::vector<lp::Sense> senses;
  int n = 0;
};

RandomBip BuildRandomBinaryProgram(uint64_t seed, int n, int rows) {
  Rng rng(seed);
  RandomBip out;
  out.n = n;
  for (int j = 0; j < n; ++j) {
    out.costs.push_back(rng.Uniform(-5.0, 5.0));
    out.model.AddBinary(out.costs.back());
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<double> coefs(n, 0.0);
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.7)) {
        coefs[j] = rng.Uniform(-3.0, 3.0);
        terms.push_back({j, coefs[j]});
      }
    }
    // RHS chosen so that x = 0 is always feasible: keeps every instance
    // solvable and the comparison meaningful.
    const double rhs = rng.Uniform(0.0, 4.0);
    out.model.AddConstraint(std::move(terms), lp::Sense::kLe, rhs);
    out.rows.push_back(coefs);
    out.rhs.push_back(rhs);
    out.senses.push_back(lp::Sense::kLe);
  }
  return out;
}

double BruteForceMin(const RandomBip& bip) {
  double best = 1e18;
  for (int mask = 0; mask < (1 << bip.n); ++mask) {
    bool ok = true;
    for (size_t i = 0; i < bip.rows.size() && ok; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < bip.n; ++j) {
        if (mask & (1 << j)) lhs += bip.rows[i][j];
      }
      if (lhs > bip.rhs[i] + 1e-9) ok = false;
    }
    if (!ok) continue;
    double obj = 0.0;
    for (int j = 0; j < bip.n; ++j) {
      if (mask & (1 << j)) obj += bip.costs[j];
    }
    best = std::min(best, obj);
  }
  return best;
}

TEST_P(MilpProperty, MatchesBruteForceOnRandomBinaryPrograms) {
  for (int round = 0; round < 6; ++round) {
    RandomBip bip = BuildRandomBinaryProgram(GetParam() * 100 + round,
                                             /*n=*/10, /*rows=*/4);
    const double reference = BruteForceMin(bip);
    auto res = BranchAndBoundSolver::Solve(bip.model);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->status, MilpStatus::kOptimal)
        << MilpStatusToString(res->status) << " (round " << round << ")";
    EXPECT_NEAR(res->objective, reference, 1e-6) << "round " << round;
    EXPECT_TRUE(bip.model.IsFeasible(res->values));
  }
}

TEST_P(MilpProperty, BoundNeverCrossesIncumbent) {
  RandomBip bip = BuildRandomBinaryProgram(GetParam() ^ 0x5555, 12, 5);
  BranchAndBoundSolver::Options opts;
  opts.max_nodes = 5;  // force early termination
  auto res = BranchAndBoundSolver::Solve(bip.model, opts);
  ASSERT_TRUE(res.ok());
  if (res->status == MilpStatus::kFeasible ||
      res->status == MilpStatus::kOptimal) {
    // Minimization: proven bound <= incumbent objective.
    EXPECT_LE(res->best_bound, res->objective + 1e-6);
    // And the true optimum lies between them.
    const double reference = BruteForceMin(bip);
    EXPECT_GE(reference, res->best_bound - 1e-6);
    EXPECT_LE(reference, res->objective + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpProperty,
                         ::testing::Values(3, 17, 50, 404, 9000));

}  // namespace
}  // namespace albic::milp
