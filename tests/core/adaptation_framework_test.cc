#include "core/adaptation_framework.h"

#include <gtest/gtest.h>

#include "balance/milp_rebalancer.h"

namespace albic::core {
namespace {

using balance::MilpRebalancer;
using balance::MilpRebalancerOptions;
using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::LoadModel;
using engine::Topology;

struct Fixture {
  Topology topo;
  Cluster cluster;
  Assignment assign;
  std::vector<double> proc;
  LoadModel load_model{engine::CostModel{}};
  MilpRebalancer rebalancer;

  Fixture(int nodes, int groups, double load_each)
      : cluster(nodes), assign(groups), rebalancer([] {
          MilpRebalancerOptions o;
          o.mode = MilpRebalancerOptions::Mode::kHeuristic;
          o.time_budget_ms = 10;
          return o;
        }()) {
    topo.AddOperator("op", groups, 1 << 20);
    for (KeyGroupId g = 0; g < groups; ++g) assign.set_node(g, g % nodes);
    proc.assign(static_cast<size_t>(groups), load_each);
  }
};

TEST(AdaptationFrameworkTest, BuildSnapshotComputesLoads) {
  Fixture f(2, 4, 10.0);
  AdaptationFramework fw(&f.rebalancer, nullptr, AdaptationOptions{});
  engine::SystemSnapshot snap = fw.BuildSnapshot(
      f.topo, f.load_model, f.proc, nullptr, f.cluster, f.assign);
  EXPECT_DOUBLE_EQ(snap.node_loads[0], 20.0);
  EXPECT_DOUBLE_EQ(snap.node_loads[1], 20.0);
  EXPECT_EQ(snap.group_loads.size(), 4u);
  EXPECT_EQ(snap.migration_costs.size(), 4u);
}

TEST(AdaptationFrameworkTest, RoundBalancesWithoutScaling) {
  Fixture f(2, 4, 10.0);
  // Pile everything on node 0.
  for (KeyGroupId g = 0; g < 4; ++g) f.assign.set_node(g, 0);
  AdaptationFramework fw(&f.rebalancer, nullptr, AdaptationOptions{});
  auto round = fw.RunRound(f.topo, f.load_model, f.proc, nullptr,
                           &f.cluster, &f.assign);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->report.count, 2);
  EXPECT_EQ(f.assign.count_on(0), 2);
  EXPECT_EQ(f.assign.count_on(1), 2);
}

TEST(AdaptationFrameworkTest, TerminatesDrainedNodes) {
  Fixture f(3, 6, 10.0);
  ASSERT_TRUE(f.cluster.MarkForRemoval(2).ok());
  AdaptationFramework fw(&f.rebalancer, nullptr, AdaptationOptions{});
  // Round 1: drains node 2 (ample budget).
  auto r1 = fw.RunRound(f.topo, f.load_model, f.proc, nullptr, &f.cluster,
                        &f.assign);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(f.assign.count_on(2), 0);
  EXPECT_TRUE(f.cluster.is_active(2));  // still active until next round
  // Round 2: lines 1-3 of Algorithm 1 terminate it.
  auto r2 = fw.RunRound(f.topo, f.load_model, f.proc, nullptr, &f.cluster,
                        &f.assign);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->nodes_terminated, 1);
  EXPECT_FALSE(f.cluster.is_active(2));
}

TEST(AdaptationFrameworkTest, ScalingPolicyAddsNodesAndReplans) {
  Fixture f(2, 4, 48.0);  // 96% per node: overloaded even when balanced
  scaling::UtilizationScalingPolicy policy;
  AdaptationOptions opts;
  AdaptationFramework fw(&f.rebalancer, &policy, opts);
  auto round = fw.RunRound(f.topo, f.load_model, f.proc, nullptr,
                           &f.cluster, &f.assign);
  ASSERT_TRUE(round.ok());
  EXPECT_GT(round->nodes_added, 0);
  EXPECT_GT(f.cluster.num_active(), 2);
  // Replanning after scale-out should have moved load onto the new node.
  EXPECT_GT(f.assign.count_on(2), 0);
}

TEST(AdaptationFrameworkTest, NonIntegratedSkipsReplan) {
  Fixture f(2, 4, 48.0);
  scaling::UtilizationScalingPolicy policy;
  AdaptationOptions opts;
  opts.replan_after_scaling = false;
  AdaptationFramework fw(&f.rebalancer, &policy, opts);
  auto round = fw.RunRound(f.topo, f.load_model, f.proc, nullptr,
                           &f.cluster, &f.assign);
  ASSERT_TRUE(round.ok());
  EXPECT_GT(round->nodes_added, 0);
  // Without the line-7 replan nothing lands on the new node this round.
  EXPECT_EQ(f.assign.count_on(2), 0);
}

TEST(AdaptationFrameworkTest, MigrationBudgetFlowsThrough) {
  Fixture f(2, 8, 10.0);
  for (KeyGroupId g = 0; g < 8; ++g) f.assign.set_node(g, 0);
  AdaptationOptions opts;
  opts.constraints.max_migrations = 2;
  AdaptationFramework fw(&f.rebalancer, nullptr, opts);
  auto round = fw.RunRound(f.topo, f.load_model, f.proc, nullptr,
                           &f.cluster, &f.assign);
  ASSERT_TRUE(round.ok());
  EXPECT_LE(round->report.count, 2);
}

}  // namespace
}  // namespace albic::core
