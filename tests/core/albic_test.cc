#include "core/albic.h"

#include <gtest/gtest.h>

#include "engine/load_model.h"

namespace albic::core {
namespace {

using balance::RebalanceConstraints;
using engine::Assignment;
using engine::Cluster;
using engine::CommMatrix;
using engine::KeyGroupId;
using engine::NodeId;
using engine::SystemSnapshot;
using engine::Topology;

/// A pair-chain job: `pairs` upstream groups each sending all traffic to the
/// aligned downstream group (1-1), partners initially on different nodes.
struct Fixture {
  Topology topo;
  Cluster cluster;
  CommMatrix comm;
  SystemSnapshot snap;
  int pairs;

  Fixture(int nodes, int pairs_in, double pair_rate = 10.0)
      : cluster(nodes), comm(2 * pairs_in), pairs(pairs_in) {
    topo.AddOperator("up", pairs, 1 << 20);
    topo.AddOperator("down", pairs, 1 << 20);
    EXPECT_TRUE(topo.AddStream(0, 1,
                               engine::PartitioningPattern::kOneToOne).ok());
    Assignment assign(2 * pairs);
    for (KeyGroupId g = 0; g < pairs; ++g) {
      assign.set_node(g, g % nodes);
      assign.set_node(pairs + g, (g + nodes / 2) % nodes);
      comm.Add(g, pairs + g, pair_rate);
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.comm = &comm;
    snap.assignment = assign;
    snap.group_loads.assign(static_cast<size_t>(2 * pairs), 5.0);
    snap.migration_costs.assign(static_cast<size_t>(2 * pairs), 1.0);
    snap.node_loads.assign(static_cast<size_t>(nodes), 0.0);
    for (KeyGroupId g = 0; g < 2 * pairs; ++g) {
      snap.node_loads[assign.node_of(g)] += snap.group_loads[g];
    }
  }
};

AlbicOptions FastOptions() {
  AlbicOptions opts;
  opts.milp.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  opts.milp.time_budget_ms = 10;
  return opts;
}

TEST(AlbicTest, CalculateScoresSplitsByCurrentCollocation) {
  Fixture f(4, 8);
  // Manually collocate one pair: groups 0 and 8 both on node 0.
  f.snap.assignment.set_node(8, 0);
  std::vector<Albic::ScoredPair> col, tobe;
  Albic::CalculateScores(f.snap, 1.5, &col, &tobe);
  ASSERT_EQ(col.size(), 1u);
  EXPECT_EQ(col[0].a, 0);
  EXPECT_EQ(col[0].b, 8);
  EXPECT_EQ(tobe.size(), 7u);  // remaining pairs not collocated yet
}

TEST(AlbicTest, ScoreFactorFiltersWeakPairs) {
  Fixture f(4, 8);
  // Dilute group 0's output: even split to two targets -> rate 2x avg is
  // needed to qualify with sF = 2.
  f.comm.SetRow(0, {{8, 5.0}, {9, 5.0}});
  std::vector<Albic::ScoredPair> col, tobe;
  // avg for group 0 = 10 / 8 downstream groups = 1.25; with sF = 8 the
  // threshold is 10: entries at 5.0 fail, other groups' 10.0 entries pass
  // their own (avg = 1.25, threshold 10) boundary exactly -> fail too.
  Albic::CalculateScores(f.snap, 8.0, &col, &tobe);
  EXPECT_TRUE(col.empty());
  EXPECT_TRUE(tobe.empty());
}

TEST(AlbicTest, GraduallyImprovesCollocation) {
  Fixture f(4, 12);
  Albic albic(FastOptions());
  RebalanceConstraints cons;
  cons.max_migrations = 4;

  double previous = engine::CollocationPercent(f.comm, f.snap.assignment);
  EXPECT_NEAR(previous, 0.0, 1e-9);  // adversarial start
  // Iterate ALBIC rounds, feeding each plan back in.
  double final_collocation = previous;
  for (int round = 0; round < 24; ++round) {
    auto plan = albic.ComputePlan(f.snap, cons);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    f.snap.assignment = plan->assignment;
    // Keep node_loads fresh for the pin-target choice.
    std::fill(f.snap.node_loads.begin(), f.snap.node_loads.end(), 0.0);
    for (KeyGroupId g = 0; g < f.snap.assignment.num_groups(); ++g) {
      f.snap.node_loads[f.snap.assignment.node_of(g)] +=
          f.snap.group_loads[g];
    }
    final_collocation =
        engine::CollocationPercent(f.comm, f.snap.assignment);
  }
  EXPECT_GT(final_collocation, 60.0);  // most pairs found each other
}

TEST(AlbicTest, MaintainsLoadDistanceWhileCollocating) {
  Fixture f(4, 12);
  Albic albic(FastOptions());
  RebalanceConstraints cons;
  cons.max_migrations = 6;
  for (int round = 0; round < 10; ++round) {
    auto plan = albic.ComputePlan(f.snap, cons);
    ASSERT_TRUE(plan.ok());
    EXPECT_LE(plan->predicted_load_distance, 10.0 + 1e-6)
        << "round " << round << " violated maxLD";
    f.snap.assignment = plan->assignment;
  }
}

TEST(AlbicTest, CollocatedPartitionsMigrateAsUnits) {
  Fixture f(4, 8);
  // Pre-collocate pairs 0 and 1 on node 0 (both endpoints).
  f.snap.assignment.set_node(0, 0);
  f.snap.assignment.set_node(8, 0);
  f.snap.assignment.set_node(1, 0);
  f.snap.assignment.set_node(9, 0);
  Albic albic(FastOptions());
  RebalanceConstraints cons;
  cons.max_migrations = 8;
  auto plan = albic.ComputePlan(f.snap, cons);
  ASSERT_TRUE(plan.ok());
  // Wherever the endpoints of a pre-collocated pair went, they went
  // together.
  EXPECT_EQ(plan->assignment.node_of(0), plan->assignment.node_of(8));
  EXPECT_EQ(plan->assignment.node_of(1), plan->assignment.node_of(9));
}

TEST(AlbicTest, MaintainCollocationSplitsOversizedSets) {
  Fixture f(4, 8);
  // Build one giant collocated set with total load 80 and maxPL 25: must
  // split into >= 4 partitions.
  std::vector<Albic::ScoredPair> col;
  for (KeyGroupId g = 0; g < 8; ++g) {
    col.push_back({g, static_cast<KeyGroupId>(8 + g), 10.0});
    if (g > 0) col.push_back({0, g, 1.0});  // chain everything together
  }
  Albic albic(FastOptions());
  RebalanceConstraints cons;
  auto partitions = albic.MaintainCollocation(f.snap, col, cons, 25.0);
  ASSERT_GE(partitions.size(), 4u);
  for (const auto& part : partitions) {
    double load = 0.0;
    for (KeyGroupId g : part) load += f.snap.group_loads[g];
    EXPECT_LE(load, 25.0 * 1.6) << "partition grossly exceeds maxPL";
  }
}

TEST(AlbicTest, FallsBackToPureMilpWithoutComm) {
  Fixture f(2, 4);
  f.snap.comm = nullptr;
  Albic albic(FastOptions());
  auto plan = albic.ComputePlan(f.snap, RebalanceConstraints{});
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->predicted_load_distance, 10.0 + 1e-6);
}

}  // namespace
}  // namespace albic::core
