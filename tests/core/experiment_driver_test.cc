#include "core/experiment_driver.h"

#include <gtest/gtest.h>

#include "balance/milp_rebalancer.h"
#include "workload/synthetic_collocation.h"

namespace albic::core {
namespace {

using balance::MilpRebalancerOptions;
using workload::SyntheticCollocationOptions;
using workload::SyntheticCollocationWorkload;

SyntheticCollocationOptions SmallOptions() {
  SyntheticCollocationOptions opts;
  opts.nodes = 4;
  opts.key_groups = 40;
  opts.operators = 4;
  opts.max_collocation_pct = 50.0;
  opts.seed = 5;
  return opts;
}

TEST(ExperimentDriverTest, RunsAllPeriodsAndRecordsStats) {
  SyntheticCollocationWorkload wl(SmallOptions());
  engine::Cluster cluster = wl.MakeCluster();
  engine::Assignment assign = wl.MakeInitialAssignment();
  MilpRebalancerOptions mopts;
  mopts.mode = MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 5;
  balance::MilpRebalancer rebalancer(mopts);
  AdaptationOptions aopts;
  aopts.constraints.max_migrations = 5;
  AdaptationFramework fw(&rebalancer, nullptr, aopts);
  engine::LoadModel load_model(engine::CostModel{});
  DriverOptions dopts;
  dopts.periods = 8;
  ExperimentDriver driver(&wl.topology(), &cluster, &assign, &wl, &fw,
                          &load_model, dopts);
  auto stats = driver.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_periods(), 8);
  for (const auto& p : stats->series()) {
    EXPECT_GE(p.load_distance, 0.0);
    EXPECT_GT(p.total_load, 0.0);
    EXPECT_LE(p.migrations, 5);
    EXPECT_EQ(p.active_nodes, 4);
  }
}

TEST(ExperimentDriverTest, AdaptationReducesLoadDistanceOverTime) {
  SyntheticCollocationOptions wopts = SmallOptions();
  wopts.fluct_pct = 0.0;  // static workload: balancer should converge
  SyntheticCollocationWorkload wl(wopts);
  engine::Cluster cluster = wl.MakeCluster();
  // Deliberately terrible start: everything on node 0.
  engine::Assignment assign(wl.num_key_groups());
  for (engine::KeyGroupId g = 0; g < wl.num_key_groups(); ++g) {
    assign.set_node(g, 0);
  }
  MilpRebalancerOptions mopts;
  mopts.mode = MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 10;
  balance::MilpRebalancer rebalancer(mopts);
  AdaptationOptions aopts;
  aopts.constraints.max_migrations = 8;
  AdaptationFramework fw(&rebalancer, nullptr, aopts);
  engine::LoadModel load_model(engine::CostModel{});
  DriverOptions dopts;
  dopts.periods = 10;
  ExperimentDriver driver(&wl.topology(), &cluster, &assign, &wl, &fw,
                          &load_model, dopts);
  auto stats = driver.Run();
  ASSERT_TRUE(stats.ok());
  const auto& series = stats->series();
  EXPECT_LT(series.back().load_distance, series.front().load_distance + 1.0);
  EXPECT_LT(series.back().load_distance, 5.0);
}

TEST(ExperimentDriverTest, LoadIndexBaselineIsFirstPeriods) {
  SyntheticCollocationWorkload wl(SmallOptions());
  engine::Cluster cluster = wl.MakeCluster();
  engine::Assignment assign = wl.MakeInitialAssignment();
  MilpRebalancerOptions mopts;
  mopts.mode = MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 5;
  balance::MilpRebalancer rebalancer(mopts);
  AdaptationFramework fw(&rebalancer, nullptr, AdaptationOptions{});
  engine::LoadModel load_model(engine::CostModel{});
  DriverOptions dopts;
  dopts.periods = 4;
  dopts.baseline_periods = 2;
  ExperimentDriver driver(&wl.topology(), &cluster, &assign, &wl, &fw,
                          &load_model, dopts);
  ASSERT_TRUE(driver.Run().ok());
  EXPECT_NEAR(driver.stats().LoadIndexAt(0), 100.0, 25.0);
}

}  // namespace
}  // namespace albic::core
