// SloTriggerPolicy edge cases: the minimum-sample guard, check pacing,
// cooldown suppression, exponential backoff growth and its reset after a
// healthy check, and the interaction between SLO rounds and the
// statistics-period cadence (a triggered round restarts the period).

#include "core/slo_policy.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "balance/milp_rebalancer.h"
#include "core/controller_loop.h"
#include "engine/load_model.h"
#include "ops/aggregate.h"

namespace albic::core {
namespace {

engine::LatencySummary Latency(int64_t p99_us, int64_t samples) {
  engine::LatencySummary s;
  s.e2e_count = samples;
  s.e2e_p50_us = p99_us / 2;
  s.e2e_p99_us = p99_us;
  s.e2e_max_us = p99_us;
  return s;
}

SloTriggerOptions BaseOptions() {
  SloTriggerOptions options;
  options.p99_bound_us = 1000;
  options.min_samples = 32;
  options.check_every_us = 10 * 1000;
  options.cooldown_us = 100 * 1000;
  options.backoff_factor = 2.0;
  options.max_cooldown_us = 400 * 1000;
  return options;
}

TEST(SloTriggerPolicyTest, DisabledNeverWantsChecks) {
  SloTriggerPolicy policy{SloTriggerOptions{}};  // p99_bound_us = 0
  EXPECT_FALSE(policy.enabled());
  EXPECT_FALSE(policy.WantsCheck(0));
  EXPECT_FALSE(policy.ShouldTrigger(0, Latency(10000, 1000)));
}

TEST(SloTriggerPolicyTest, MinSamplesGuardSuppressesColdStartBreach) {
  SloTriggerPolicy policy(BaseOptions());
  // A huge p99 from too few observations must not trigger...
  EXPECT_FALSE(policy.ShouldTrigger(0, Latency(50000, 31)));
  // ...and the guard consumed the check, so pacing delays the next one.
  EXPECT_FALSE(policy.WantsCheck(5 * 1000));
  // At the next paced check, enough samples do trigger.
  EXPECT_TRUE(policy.ShouldTrigger(10 * 1000, Latency(50000, 32)));
}

TEST(SloTriggerPolicyTest, CheckPacingSkipsBetweenEvaluations) {
  SloTriggerPolicy policy(BaseOptions());
  EXPECT_TRUE(policy.WantsCheck(0));  // first check is always due
  EXPECT_FALSE(policy.ShouldTrigger(0, Latency(100, 1000)));  // healthy
  EXPECT_FALSE(policy.WantsCheck(9999));
  EXPECT_TRUE(policy.WantsCheck(10 * 1000));
}

TEST(SloTriggerPolicyTest, CooldownSuppressesAndBackoffGrows) {
  SloTriggerPolicy policy(BaseOptions());
  ASSERT_TRUE(policy.ShouldTrigger(0, Latency(5000, 1000)));
  policy.OnTriggeredRound(0);
  EXPECT_EQ(policy.triggered_rounds(), 1);
  // Backoff applied for the NEXT cooldown: 100 ms -> 200 ms.
  EXPECT_EQ(policy.current_cooldown_us(), 200 * 1000);

  // A persistent breach inside the cooldown window cannot re-trigger.
  EXPECT_FALSE(policy.ShouldTrigger(50 * 1000, Latency(5000, 1000)));
  // Past the cooldown it can, and the cooldown doubles again.
  ASSERT_TRUE(policy.ShouldTrigger(110 * 1000, Latency(5000, 1000)));
  policy.OnTriggeredRound(110 * 1000);
  EXPECT_EQ(policy.current_cooldown_us(), 400 * 1000);

  // The cap binds: a further round cannot exceed max_cooldown_us.
  ASSERT_TRUE(policy.ShouldTrigger(600 * 1000, Latency(5000, 1000)));
  policy.OnTriggeredRound(600 * 1000);
  EXPECT_EQ(policy.current_cooldown_us(), 400 * 1000);
}

TEST(SloTriggerPolicyTest, HealthyCheckResetsBackoffToBase) {
  SloTriggerPolicy policy(BaseOptions());
  ASSERT_TRUE(policy.ShouldTrigger(0, Latency(5000, 1000)));
  policy.OnTriggeredRound(0);
  ASSERT_TRUE(policy.ShouldTrigger(210 * 1000, Latency(5000, 1000)));
  policy.OnTriggeredRound(210 * 1000);
  ASSERT_GT(policy.current_cooldown_us(), BaseOptions().cooldown_us);

  // A quiet period: the p99 drops back under the bound. One healthy check
  // resets the escalated cooldown to its base value.
  EXPECT_FALSE(policy.ShouldTrigger(1000 * 1000, Latency(100, 1000)));
  EXPECT_EQ(policy.current_cooldown_us(), BaseOptions().cooldown_us);
}

/// A terminal operator whose batches cost ~1 ms of wall time each, so any
/// microsecond-scale p99 bound is breached deterministically.
class SlowSinkOperator : public engine::StreamOperator {
 public:
  void Process(const engine::Tuple&, int, engine::Emitter*) override {
    Spin();
  }
  void ProcessBatch(const engine::TupleBatch&, int,
                    engine::Emitter*) override {
    Spin();
  }

 private:
  static void Spin() {
    const auto end = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(1);
    while (std::chrono::steady_clock::now() < end) {
    }
  }
};

TEST(SloTriggerPolicyTest, SloRoundRestartsPeriodCadence) {
  // An SLO round measures a partial period; the controller restarts the
  // cadence at the trigger instant so the next boundary round gets a full
  // period again — a boundary must NOT fire at the original schedule
  // right after a triggered round.
  constexpr int kGroups = 8;
  engine::Topology topo;
  topo.AddOperator("slow", kGroups, 1 << 10);
  engine::Cluster cluster(2);
  engine::Assignment assign(kGroups);
  for (engine::KeyGroupId g = 0; g < kGroups; ++g) assign.set_node(g, g % 2);
  SlowSinkOperator slow;
  engine::LocalEngineOptions eopts;
  eopts.mode = engine::ExecutionMode::kBatched;
  eopts.window_every_us = 0;
  eopts.max_batch_tuples = 64;
  eopts.latency_sample_every = 16;
  engine::LocalEngine engine(&topo, &cluster, assign,
                             std::vector<engine::StreamOperator*>{&slow},
                             eopts);
  balance::MilpRebalancerOptions mopts;
  mopts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 5;
  balance::MilpRebalancer rebalancer(mopts);
  AdaptationFramework framework(&rebalancer, /*policy=*/nullptr, {});
  engine::LoadModel load_model{engine::CostModel{}};

  ControllerLoopOptions copts;
  copts.period_every_us = 500 * 1000;  // 0.5 s boundary cadence
  copts.node_capacity_work_units = 100.0;
  copts.use_comm = false;
  copts.slo.p99_bound_us = 100;
  copts.slo.min_samples = 4;
  copts.slo.check_every_us = 10 * 1000;
  // One trigger only: a cooldown longer than the stream isolates the
  // cadence interaction from repeat triggers.
  copts.slo.cooldown_us = 3600LL * 1000 * 1000;
  ControllerLoop controller(&engine, &framework, &load_model, &topo,
                            &cluster, copts);

  // 1 s of event time in 100-tuple chunks (0.5 ms per tuple).
  std::vector<engine::Tuple> chunk;
  int64_t last_ts = 0;
  for (int c = 0; c < 20; ++c) {
    chunk.clear();
    for (int i = 0; i < 100; ++i) {
      engine::Tuple t;
      t.key = static_cast<uint64_t>(i);
      t.ts = (c * 100 + i) * 500;
      last_ts = t.ts;
      chunk.push_back(t);
    }
    ASSERT_TRUE(controller.IngestBatch(0, chunk.data(), chunk.size()).ok());
  }

  const std::vector<ControllerRound>& history = controller.history();
  ASSERT_EQ(controller.rounds_run(), 2);
  ASSERT_TRUE(history[0].slo_triggered);
  EXPECT_FALSE(history[1].slo_triggered);
  EXPECT_EQ(controller.slo_policy().triggered_rounds(), 1);
  // The trigger fired at ~0.05 s (the first chunk's end) and restarted the
  // period cadence there, so the following boundary round measured a FULL
  // 0.5 s period: ~1000 of the 0.5 ms-spaced tuples. Had the cadence kept
  // its original anchor (first tuple, ts 0), the boundary would have fired
  // at 0.5 s and measured only ~900 tuples.
  EXPECT_GE(history[1].tuples_processed, 950);
  EXPECT_LE(history[1].tuples_processed, 1050);
  EXPECT_GT(last_ts, 500 * 1000);
}

}  // namespace
}  // namespace albic::core
