// The online control loop must close the measure -> decide -> act cycle on
// real engine measurements: rounds fire at event-time period boundaries,
// overload measured from the stream triggers scale-out, the planned
// migrations land on the live engine, a cooling stream scales back in, and
// the latency-SLO trigger fires rounds early (with cooldown) when the
// observed end-to-end p99 breaches its bound.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "balance/milp_rebalancer.h"
#include "core/controller_loop.h"
#include "engine/load_model.h"
#include "ops/aggregate.h"
#include "scaling/scaling_policy.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::Tuple;

constexpr int kGroups = 16;
constexpr int64_t kPeriodUs = 1000000;  // 1 s periods

struct Harness {
  engine::Topology topo;
  engine::Cluster cluster{2};
  ops::SumByKeyOperator sum{kGroups, ops::GroupField::kKey,
                            /*emit_updates=*/false};
  std::unique_ptr<engine::LocalEngine> engine;
  balance::MilpRebalancer rebalancer;
  scaling::UtilizationScalingPolicy policy;
  std::unique_ptr<core::AdaptationFramework> framework;
  engine::LoadModel load_model{engine::CostModel{}};
  std::unique_ptr<core::ControllerLoop> controller;

  Harness()
      : rebalancer([] {
          balance::MilpRebalancerOptions mopts;
          mopts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
          mopts.time_budget_ms = 5;
          return mopts;
        }()) {
    topo.AddOperator("sum", kGroups, 1 << 10);
    engine::Assignment assign(kGroups);
    for (KeyGroupId g = 0; g < kGroups; ++g) assign.set_node(g, g % 2);
    engine::LocalEngineOptions eopts;
    eopts.mode = engine::ExecutionMode::kBatched;
    eopts.window_every_us = 0;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&sum}, eopts);

    core::AdaptationOptions aopts;
    aopts.constraints.max_migrations = 8;
    framework = std::make_unique<core::AdaptationFramework>(&rebalancer,
                                                            &policy, aopts);
    core::ControllerLoopOptions copts;
    copts.period_every_us = kPeriodUs;
    // 100 work units per period = 100% on a reference node.
    copts.node_capacity_work_units = 100.0;
    copts.use_comm = false;
    controller = std::make_unique<core::ControllerLoop>(
        engine.get(), framework.get(), &load_model, &topo, &cluster, copts);
  }

  /// Streams `tuples_per_period` evenly-spaced tuples for every period in
  /// [0, periods), keys spread over all groups.
  void Stream(int periods, int tuples_per_period) {
    for (int p = 0; p < periods; ++p) {
      for (int i = 0; i < tuples_per_period; ++i) {
        Tuple t;
        t.key = static_cast<uint64_t>(i);
        t.ts = static_cast<int64_t>(p) * kPeriodUs +
               i * kPeriodUs / tuples_per_period;
        t.num = 1.0;
        ASSERT_TRUE(controller->Ingest(0, t).ok());
      }
    }
  }
};

TEST(ControllerLoopTest, RoundsFireAtPeriodBoundaries) {
  Harness h;
  h.Stream(/*periods=*/4, /*tuples_per_period=*/100);
  // Boundaries passed at the first tuple of periods 1, 2, 3.
  EXPECT_EQ(h.controller->rounds_run(), 3);
  for (const core::ControllerRound& r : h.controller->history()) {
    EXPECT_GT(r.tuples_processed, 0);
  }
}

TEST(ControllerLoopTest, OverloadMeasuredFromStreamTriggersScaleOut) {
  Harness h;
  // 2 nodes, 360 work units per period => 180% per node: rebalancing alone
  // cannot fix it, so the policy must acquire nodes.
  h.Stream(/*periods=*/4, /*tuples_per_period=*/360);
  ASSERT_GE(h.controller->rounds_run(), 3);
  EXPECT_GT(h.cluster.num_active(), 2);
  int added = 0;
  int applied = 0;
  for (const core::ControllerRound& r : h.controller->history()) {
    added += r.nodes_added;
    applied += r.migrations_applied;
  }
  EXPECT_GT(added, 0);
  EXPECT_GT(applied, 0) << "planned migrations must land on the engine";
  // The live engine's allocation actually uses a scaled-out node.
  bool uses_new_node = false;
  for (KeyGroupId g = 0; g < kGroups; ++g) {
    if (h.engine->assignment().node_of(g) >= 2) uses_new_node = true;
  }
  EXPECT_TRUE(uses_new_node);
}

TEST(ControllerLoopTest, CoolingStreamScalesBackIn) {
  Harness h;
  h.Stream(/*periods=*/4, /*tuples_per_period=*/360);  // hot: scale out
  const int peak = h.cluster.num_active();
  ASSERT_GT(peak, 2);
  // Cool down far below the scale-in threshold and give the controller
  // rounds to drain and terminate nodes.
  for (int p = 4; p < 14; ++p) {
    for (int i = 0; i < 40; ++i) {
      Tuple t;
      t.key = static_cast<uint64_t>(i);
      t.ts = static_cast<int64_t>(p) * kPeriodUs + i * kPeriodUs / 40;
      t.num = 1.0;
      ASSERT_TRUE(h.controller->Ingest(0, t).ok());
    }
  }
  EXPECT_LT(h.cluster.num_active(), peak);
  int terminated = 0;
  for (const core::ControllerRound& r : h.controller->history()) {
    terminated += r.nodes_terminated;
  }
  EXPECT_GT(terminated, 0);
}

/// A deliberately slow terminal operator: every delivered batch costs
/// ~1 ms of wall time, so the measured end-to-end p99 is far above any
/// microsecond-scale SLO bound — deterministically, on any machine.
class SlowSinkOperator : public engine::StreamOperator {
 public:
  void Process(const engine::Tuple& tuple, int, engine::Emitter*) override {
    (void)tuple;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  void ProcessBatch(const engine::TupleBatch& batch, int,
                    engine::Emitter*) override {
    (void)batch;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

TEST(ControllerLoopTest, SloBreachTriggersEarlyRoundWithCooldown) {
  engine::Topology topo;
  topo.AddOperator("slow", kGroups, 1 << 10);
  engine::Cluster cluster(2);
  engine::Assignment assign(kGroups);
  for (KeyGroupId g = 0; g < kGroups; ++g) assign.set_node(g, g % 2);
  SlowSinkOperator slow;
  engine::LocalEngineOptions eopts;
  eopts.mode = engine::ExecutionMode::kBatched;
  eopts.window_every_us = 0;
  eopts.max_batch_tuples = 64;        // drain (and measure) often
  eopts.latency_sample_every = 16;    // telemetry on
  engine::LocalEngine engine(&topo, &cluster, assign,
                             std::vector<engine::StreamOperator*>{&slow},
                             eopts);

  balance::MilpRebalancerOptions mopts;
  mopts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 5;
  balance::MilpRebalancer rebalancer(mopts);
  core::AdaptationFramework framework(&rebalancer, /*policy=*/nullptr, {});
  engine::LoadModel load_model{engine::CostModel{}};

  core::ControllerLoopOptions copts;
  // No boundary rounds within the stream: any round that runs was fired by
  // the SLO trigger.
  copts.period_every_us = 3600LL * 1000 * 1000;
  copts.node_capacity_work_units = 100.0;
  copts.use_comm = false;
  copts.slo.p99_bound_us = 100;          // ~1 ms measured >> 100 us bound
  copts.slo.min_samples = 4;
  copts.slo.check_every_us = 10 * 1000;  // every 10 ms of event time
  copts.slo.cooldown_us = 100 * 1000;    // 0.1 s event-time cooldown
  core::ControllerLoop controller(&engine, &framework, &load_model, &topo,
                                  &cluster, copts);

  // 1 s of event time in 100-tuple chunks.
  std::vector<Tuple> chunk;
  for (int c = 0; c < 20; ++c) {
    chunk.clear();
    for (int i = 0; i < 100; ++i) {
      Tuple t;
      t.key = static_cast<uint64_t>(i);
      t.ts = (c * 100 + i) * 500;  // 0.5 ms event time per tuple
      chunk.push_back(t);
    }
    ASSERT_TRUE(controller.IngestBatch(0, chunk.data(), chunk.size()).ok());
  }

  // The breach fired at least one early round, attributed as SLO-triggered
  // and carrying the measured percentiles that justified it.
  ASSERT_GE(controller.rounds_run(), 1);
  EXPECT_TRUE(controller.history()[0].slo_triggered);
  EXPECT_GT(controller.history()[0].latency.e2e_p99_us,
            copts.slo.p99_bound_us);
  EXPECT_GT(controller.history()[0].latency.e2e_count, 0);
  EXPECT_EQ(controller.slo_policy().triggered_rounds(),
            controller.rounds_run());
  // Cooldown + backoff bound the trigger rate: within 1 s of event time at
  // a 0.1 s base cooldown (doubling each consecutive breach), no more than
  // a handful of rounds can fire — a breach must not thrash the loop.
  EXPECT_LE(controller.rounds_run(), 6);
  EXPECT_GT(controller.slo_policy().current_cooldown_us(),
            copts.slo.cooldown_us);
}

TEST(ControllerLoopTest, SloDisabledFiresNoEarlyRounds) {
  Harness h;  // telemetry off, slo off
  h.Stream(/*periods=*/1, /*tuples_per_period=*/100);
  EXPECT_EQ(h.controller->rounds_run(), 0);
  EXPECT_EQ(h.controller->slo_policy().triggered_rounds(), 0);
}

TEST(ControllerLoopTest, IngestBatchHonoursBoundariesInsideChunk) {
  Harness h;
  std::vector<Tuple> chunk;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 50; ++i) {
      Tuple t;
      t.key = static_cast<uint64_t>(i);
      t.ts = static_cast<int64_t>(p) * kPeriodUs + i * kPeriodUs / 50;
      t.num = 1.0;
      chunk.push_back(t);
    }
  }
  ASSERT_TRUE(h.controller->IngestBatch(0, chunk.data(), chunk.size()).ok());
  EXPECT_EQ(h.controller->rounds_run(), 2);
  // Every period's tuples were attributed to their own round.
  EXPECT_EQ(h.controller->history()[0].tuples_processed, 50);
  EXPECT_EQ(h.controller->history()[1].tuples_processed, 50);
}

}  // namespace
}  // namespace albic
