// Measured-cost planning pins:
//  1. With telemetry off, the measured-cost path feeds the planners
//     bit-identical inputs and produces bit-identical plans/rounds — the
//     refactor cannot change any telemetry-free configuration.
//  2. On a workload whose per-tuple WALL cost is skewed (tuple counts
//     uniform, so the modeled loads see nothing), measured-cost planning
//     spreads the measurably hot groups and clears the overload that
//     tuple-count planning leaves in place — fewer overloaded periods and
//     a lower end-to-end p99.
//  3. The controller picks the migration mode PER GROUP from the cost
//     model: indirect for a large-state/short-suffix group, direct for a
//     small-state/long-suffix group, reported per migration in
//     ControllerRound::migration_decisions.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "balance/rebalancer.h"
#include "bench/skew_scenario.h"
#include "core/controller_loop.h"
#include "engine/checkpoint.h"
#include "engine/load_model.h"
#include "ops/aggregate.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::NodeId;
using engine::Tuple;

// ---------------------------------------------------------------------------
// 1. Bit-identity with telemetry off.
// ---------------------------------------------------------------------------

/// Deterministic rebalancer: LPT of the group loads over the retained
/// nodes. Also records every snapshot's planning inputs, so the test can
/// assert the measured-cost path fed it bit-identical loads.
class RecordingLptRebalancer : public balance::Rebalancer {
 public:
  Result<balance::RebalancePlan> ComputePlan(
      const engine::SystemSnapshot& snapshot,
      const balance::RebalanceConstraints& constraints) override {
    (void)constraints;
    seen_loads.push_back(snapshot.group_loads);
    seen_shares.push_back(snapshot.group_service_share);
    balance::RebalancePlan plan;
    plan.assignment = engine::Assignment(
        snapshot.topology->num_key_groups());
    const std::vector<NodeId> retained = snapshot.cluster->retained_nodes();
    std::vector<double> node_load(snapshot.cluster->num_nodes_total(), 0.0);
    std::vector<KeyGroupId> order;
    for (KeyGroupId g = 0; g < snapshot.topology->num_key_groups(); ++g) {
      order.push_back(g);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](KeyGroupId a, KeyGroupId b) {
                       return snapshot.group_loads[a] >
                              snapshot.group_loads[b];
                     });
    for (KeyGroupId g : order) {
      NodeId best = retained.front();
      for (NodeId n : retained) {
        if (node_load[n] < node_load[best]) best = n;
      }
      plan.assignment.set_node(g, best);
      node_load[best] += snapshot.group_loads[g];
    }
    plan.migrations = snapshot.assignment.DiffTo(plan.assignment);
    return plan;
  }
  std::string name() const override { return "recording-lpt"; }

  std::vector<std::vector<double>> seen_loads;
  std::vector<std::vector<double>> seen_shares;
};

struct LptHarness {
  static constexpr int kGroups = 16;
  static constexpr int64_t kPeriodUs = 1000000;

  engine::Topology topo;
  engine::Cluster cluster{3};
  ops::SumByKeyOperator sum{kGroups, ops::GroupField::kKey,
                            /*emit_updates=*/false};
  RecordingLptRebalancer rebalancer;
  std::unique_ptr<engine::LocalEngine> engine;
  std::unique_ptr<core::AdaptationFramework> framework;
  engine::LoadModel load_model{engine::CostModel{}};
  std::unique_ptr<core::ControllerLoop> controller;

  explicit LptHarness(bool use_measured_costs) {
    topo.AddOperator("sum", kGroups, 1 << 10);
    engine::Assignment assign(kGroups);
    for (KeyGroupId g = 0; g < kGroups; ++g) assign.set_node(g, g % 3);
    engine::LocalEngineOptions eopts;
    eopts.mode = engine::ExecutionMode::kBatched;
    eopts.window_every_us = 0;
    // Telemetry OFF: the measured-cost path must fall back bit-identically.
    eopts.latency_sample_every = 0;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&sum}, eopts);
    framework = std::make_unique<core::AdaptationFramework>(
        &rebalancer, /*policy=*/nullptr, core::AdaptationOptions{});
    core::ControllerLoopOptions copts;
    copts.period_every_us = kPeriodUs;
    copts.node_capacity_work_units = 100.0;
    copts.use_comm = false;
    copts.use_measured_costs = use_measured_costs;
    controller = std::make_unique<core::ControllerLoop>(
        engine.get(), framework.get(), &load_model, &topo, &cluster, copts);
  }

  void Stream(int periods, int tuples_per_period) {
    for (int p = 0; p < periods; ++p) {
      for (int i = 0; i < tuples_per_period; ++i) {
        Tuple t;
        t.key = static_cast<uint64_t>(i % 7);  // skewed tuple counts
        t.ts = static_cast<int64_t>(p) * kPeriodUs +
               i * kPeriodUs / tuples_per_period;
        t.num = 1.0;
        ASSERT_TRUE(controller->Ingest(0, t).ok());
      }
    }
  }
};

TEST(MeasuredCostPlanningTest, TelemetryOffIsBitIdenticalToTupleCountPath) {
  LptHarness measured(/*use_measured_costs=*/true);
  LptHarness tuple_count(/*use_measured_costs=*/false);
  measured.Stream(5, 210);
  tuple_count.Stream(5, 210);

  // The planner saw bit-identical loads and no measured shares.
  ASSERT_EQ(measured.rebalancer.seen_loads.size(),
            tuple_count.rebalancer.seen_loads.size());
  ASSERT_GT(measured.rebalancer.seen_loads.size(), 0u);
  for (size_t i = 0; i < measured.rebalancer.seen_loads.size(); ++i) {
    EXPECT_EQ(measured.rebalancer.seen_loads[i],
              tuple_count.rebalancer.seen_loads[i]);
    EXPECT_TRUE(measured.rebalancer.seen_shares[i].empty());
  }

  // The rounds and the live engine's final allocation are identical.
  ASSERT_EQ(measured.controller->rounds_run(),
            tuple_count.controller->rounds_run());
  for (int r = 0; r < measured.controller->rounds_run(); ++r) {
    const core::ControllerRound& a = measured.controller->history()[r];
    const core::ControllerRound& b = tuple_count.controller->history()[r];
    EXPECT_EQ(a.migrations_planned, b.migrations_planned);
    EXPECT_EQ(a.migrations_applied, b.migrations_applied);
    EXPECT_DOUBLE_EQ(a.mean_load, b.mean_load);
    EXPECT_DOUBLE_EQ(a.load_distance, b.load_distance);
    EXPECT_FALSE(a.measured_costs);
  }
  for (KeyGroupId g = 0; g < LptHarness::kGroups; ++g) {
    EXPECT_EQ(measured.engine->assignment().node_of(g),
              tuple_count.engine->assignment().node_of(g));
  }
}

// ---------------------------------------------------------------------------
// 2. Skewed per-tuple wall cost: measured planning clears the overload.
//    (The harness lives in bench/skew_scenario.h, shared with
//    bench_latency's scenario 2; node capacity is probe-calibrated there,
//    so machine speed, sanitizers and CPU contention scale both sides.)
// ---------------------------------------------------------------------------

TEST(MeasuredCostPlanningTest, SkewedTupleCostMeasuredPlanningClearsOverload) {
  bench::SkewScenarioOptions opts;
  opts.hot_us = 40;
  opts.tuples_per_group = 50;
  opts.periods = 8;
  opts.checkpointed = false;  // pure planning comparison, direct moves
  opts.use_measured_costs = false;
  const bench::SkewScenarioResult tuple_count = bench::RunSkewScenario(opts);
  opts.use_measured_costs = true;
  const bench::SkewScenarioResult measured = bench::RunSkewScenario(opts);
  ASSERT_TRUE(tuple_count.ok);
  ASSERT_TRUE(measured.ok);

  // Tuple-count planning sees balanced counts: it never fixes the hot
  // node, which stays overloaded through the run.
  EXPECT_GE(tuple_count.overloaded_periods, 5);
  EXPECT_GE(tuple_count.last_round_overloaded_nodes, 1);
  EXPECT_FALSE(tuple_count.measured_rounds);

  // Measured-cost planning spreads the hot groups within the first rounds
  // and the overload disappears.
  EXPECT_TRUE(measured.measured_rounds);
  EXPECT_GT(measured.migrations, 0);
  EXPECT_EQ(measured.last_round_overloaded_nodes, 0);
  EXPECT_LT(measured.overloaded_periods, tuple_count.overloaded_periods);

  // And the overload was not free: the stalled backlog shows up in the
  // tuple-count run's late p99 while the measured run's stays clear of it.
  EXPECT_LT(measured.max_late_p99_us, tuple_count.max_late_p99_us);
}

// ---------------------------------------------------------------------------
// 3. Per-group migration-mode choice.
// ---------------------------------------------------------------------------

/// Returns a fixed plan (move the requested groups to the other node) and
/// records the snapshot's two migration-cost vectors, so the test can pin
/// that planners are offered BOTH estimates.
class FixedPlanRebalancer : public balance::Rebalancer {
 public:
  explicit FixedPlanRebalancer(std::vector<KeyGroupId> groups)
      : groups_(std::move(groups)) {}

  Result<balance::RebalancePlan> ComputePlan(
      const engine::SystemSnapshot& snapshot,
      const balance::RebalanceConstraints&) override {
    seen_costs_direct = snapshot.migration_costs;
    seen_costs_indirect = snapshot.migration_costs_indirect;
    balance::RebalancePlan plan;
    plan.assignment = snapshot.assignment;
    for (const KeyGroupId g : groups_) {
      plan.assignment.set_node(
          g, snapshot.assignment.node_of(g) == 0 ? 1 : 0);
    }
    plan.migrations = snapshot.assignment.DiffTo(plan.assignment);
    return plan;
  }
  std::string name() const override { return "fixed-plan"; }

  std::vector<double> seen_costs_direct;
  std::vector<double> seen_costs_indirect;

 private:
  std::vector<KeyGroupId> groups_;
};

TEST(MeasuredCostPlanningTest, MigrationModeChosenPerGroupFromCostModel) {
  engine::Topology topo;
  // Operator 0: large modeled state per group. Operator 1: tiny state.
  topo.AddOperator("big", 2, /*state_bytes_per_group=*/8 << 20);
  topo.AddOperator("small", 2, /*state_bytes_per_group=*/64);
  engine::Cluster cluster(2);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % 2);
  }
  ops::SumByKeyOperator big(2, ops::GroupField::kKey, false);
  ops::SumByKeyOperator small(2, ops::GroupField::kKey, false);
  engine::LocalEngineOptions eopts;
  eopts.mode = engine::ExecutionMode::kBatched;
  eopts.window_every_us = 0;
  engine::LocalEngine engine(&topo, &cluster, assign,
                             std::vector<engine::StreamOperator*>{&big,
                                                                  &small},
                             eopts);
  engine::MemoryCheckpointStore store;
  engine::CheckpointCoordinatorOptions ccopts;
  ccopts.interval_us = int64_t{1} << 60;  // only the initial full round
  engine::CheckpointCoordinator coordinator(&store, ccopts);
  ASSERT_TRUE(engine.EnableCheckpointing(&coordinator).ok());

  const KeyGroupId big_group = topo.first_group(0);
  const KeyGroupId small_group = topo.first_group(1);
  FixedPlanRebalancer rebalancer({big_group, small_group});
  core::AdaptationFramework framework(&rebalancer, /*policy=*/nullptr, {});
  engine::LoadModel load_model{engine::CostModel{}};
  core::ControllerLoopOptions copts;
  copts.period_every_us = 0;  // rounds only via RunRoundNow
  // Per-group mode selection is the default: use_indirect_migration stays
  // false, and checkpointing is on.
  core::ControllerLoop controller(&engine, &framework, &load_model, &topo,
                                  &cluster, copts);

  // Short suffix for the big-state group (a handful of tuples since the
  // initial checkpoint), long suffix for the small-state group.
  for (int i = 0; i < 4000; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i);
    t.ts = i;
    t.num = 1.0;
    ASSERT_TRUE(controller.Ingest(1, t).ok());  // small op: long suffix
    if (i < 8) {
      ASSERT_TRUE(controller.Ingest(0, t).ok());  // big op: short suffix
    }
  }

  const Result<core::ControllerRound> round = controller.RunRoundNow();
  ASSERT_TRUE(round.ok());

  // The snapshot offered the planner BOTH cost estimates, pointing in
  // opposite directions for the two groups: the big group's suffix
  // undercuts its state, the small group's suffix dwarfs it.
  ASSERT_EQ(rebalancer.seen_costs_indirect.size(),
            rebalancer.seen_costs_direct.size());
  EXPECT_LT(rebalancer.seen_costs_indirect[big_group],
            rebalancer.seen_costs_direct[big_group]);
  EXPECT_GT(rebalancer.seen_costs_indirect[small_group],
            rebalancer.seen_costs_direct[small_group]);

  ASSERT_EQ(round->migrations_applied, 2);
  EXPECT_EQ(round->migrations_indirect, 1);
  EXPECT_EQ(round->migrations_direct, 1);
  ASSERT_EQ(round->migration_decisions.size(), 2u);
  for (const core::MigrationDecision& d : round->migration_decisions) {
    EXPECT_GT(d.predicted_pause_us, 0.0);
    EXPECT_GE(d.actual_pause_us, 0.0);
    if (d.group == big_group) {
      // Large state, short suffix: replaying the suffix is far cheaper
      // than moving the state.
      EXPECT_EQ(d.mode, engine::MigrationMode::kIndirect);
      // The indirect prediction is exact at a quiescent point.
      EXPECT_NEAR(d.predicted_pause_us, d.actual_pause_us,
                  1e-6 * std::max(1.0, d.actual_pause_us));
    } else {
      // Tiny state, long suffix: the direct move undercuts the replay.
      EXPECT_EQ(d.group, small_group);
      EXPECT_EQ(d.mode, engine::MigrationMode::kDirect);
    }
  }
}

TEST(MeasuredCostPlanningTest, EpochModeWinsWhenOptedIn) {
  engine::Topology topo;
  topo.AddOperator("big", 2, /*state_bytes_per_group=*/8 << 20);
  topo.AddOperator("small", 2, /*state_bytes_per_group=*/64);
  engine::Cluster cluster(2);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % 2);
  }
  ops::SumByKeyOperator big(2, ops::GroupField::kKey, false);
  ops::SumByKeyOperator small(2, ops::GroupField::kKey, false);
  engine::LocalEngineOptions eopts;
  eopts.mode = engine::ExecutionMode::kBatched;
  eopts.window_every_us = 0;
  engine::LocalEngine engine(&topo, &cluster, assign,
                             std::vector<engine::StreamOperator*>{&big,
                                                                  &small},
                             eopts);
  engine::MemoryCheckpointStore store;
  engine::CheckpointCoordinatorOptions ccopts;
  ccopts.interval_us = int64_t{1} << 60;
  engine::CheckpointCoordinator coordinator(&store, ccopts);
  ASSERT_TRUE(engine.EnableCheckpointing(&coordinator).ok());

  const KeyGroupId big_group = topo.first_group(0);
  const KeyGroupId small_group = topo.first_group(1);
  FixedPlanRebalancer rebalancer({big_group, small_group});
  core::AdaptationFramework framework(&rebalancer, /*policy=*/nullptr, {});
  engine::LoadModel load_model{engine::CostModel{}};
  core::ControllerLoopOptions copts;
  copts.period_every_us = 0;
  // Opting into epoch migration makes it win whenever checkpointing offers
  // it: its predicted pause is zero regardless of state or suffix size, so
  // BOTH groups — the one direct would win and the one indirect would win —
  // move at an epoch boundary instead.
  copts.use_epoch_migration = true;
  core::ControllerLoop controller(&engine, &framework, &load_model, &topo,
                                  &cluster, copts);

  for (int i = 0; i < 4000; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i);
    t.ts = i;
    t.num = 1.0;
    ASSERT_TRUE(controller.Ingest(1, t).ok());
    if (i < 8) {
      ASSERT_TRUE(controller.Ingest(0, t).ok());
    }
  }

  const Result<core::ControllerRound> round = controller.RunRoundNow();
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->migrations_applied, 2);
  EXPECT_EQ(round->migrations_epoch, 2);
  EXPECT_EQ(round->migrations_indirect, 0);
  EXPECT_EQ(round->migrations_direct, 0);
  ASSERT_EQ(round->migration_decisions.size(), 2u);
  for (const core::MigrationDecision& d : round->migration_decisions) {
    EXPECT_EQ(d.mode, engine::MigrationMode::kEpoch);
    EXPECT_EQ(d.predicted_pause_us, 0.0);
    // The observed pause is zero too: the boundary stamp happens in the
    // background between waves, never in the tuple path.
    EXPECT_EQ(d.actual_pause_us, 0.0);
  }
}

TEST(MeasuredCostPlanningTest, LeaseModeWinsWhenOptedIn) {
  engine::Topology topo;
  topo.AddOperator("big", 2, /*state_bytes_per_group=*/8 << 20);
  topo.AddOperator("small", 2, /*state_bytes_per_group=*/64);
  engine::Cluster cluster(2);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % 2);
  }
  ops::SumByKeyOperator big(2, ops::GroupField::kKey, false);
  ops::SumByKeyOperator small(2, ops::GroupField::kKey, false);
  engine::LocalEngineOptions eopts;
  eopts.mode = engine::ExecutionMode::kBatched;
  eopts.window_every_us = 0;
  engine::LocalEngine engine(&topo, &cluster, assign,
                             std::vector<engine::StreamOperator*>{&big,
                                                                  &small},
                             eopts);
  // Deliberately NO checkpointing: a lease flip needs only the arena, so
  // the opt-in must beat direct even where epoch/indirect are unavailable.

  const KeyGroupId big_group = topo.first_group(0);
  const KeyGroupId small_group = topo.first_group(1);
  FixedPlanRebalancer rebalancer({big_group, small_group});
  core::AdaptationFramework framework(&rebalancer, /*policy=*/nullptr, {});
  engine::LoadModel load_model{engine::CostModel{}};
  core::ControllerLoopOptions copts;
  copts.period_every_us = 0;
  copts.use_lease_migration = true;
  core::ControllerLoop controller(&engine, &framework, &load_model, &topo,
                                  &cluster, copts);

  for (int i = 0; i < 4000; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i);
    t.ts = i;
    t.num = 1.0;
    ASSERT_TRUE(controller.Ingest(1, t).ok());
    if (i < 8) {
      ASSERT_TRUE(controller.Ingest(0, t).ok());
    }
  }

  const Result<core::ControllerRound> round = controller.RunRoundNow();
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->migrations_applied, 2);
  EXPECT_EQ(round->migrations_lease, 2);
  EXPECT_EQ(round->migrations_epoch, 0);
  EXPECT_EQ(round->migrations_indirect, 0);
  EXPECT_EQ(round->migrations_direct, 0);
  ASSERT_EQ(round->migration_decisions.size(), 2u);
  for (const core::MigrationDecision& d : round->migration_decisions) {
    EXPECT_EQ(d.mode, engine::MigrationMode::kLease);
    EXPECT_STREQ(d.reason, "lease-zero-cost");
    // The full prediction is auditable: the lease's zero beat the direct
    // estimate, and the checkpoint-dependent modes were unavailable.
    EXPECT_EQ(d.est_lease_us, 0.0);
    EXPECT_GT(d.est_direct_us, 0.0);
    EXPECT_EQ(d.est_indirect_us, -1.0);
    EXPECT_EQ(d.est_epoch_us, -1.0);
    EXPECT_EQ(d.predicted_pause_us, 0.0);
    // And the engine delivered on it: nothing travelled, nothing paused.
    EXPECT_EQ(d.actual_pause_us, 0.0);
  }
  // The round's accounted migration pause is zero end to end.
  EXPECT_EQ(round->migration_pause_us, 0.0);
}

TEST(MeasuredCostPlanningTest, LeaseOffLeavesDecisionsUnchanged) {
  // Default-off pin: without the opt-in the four-way choice never
  // considers leases — est_lease_us stays at its "unavailable" sentinel
  // and the chosen modes match the pre-lease controller exactly (the
  // per-group direct/indirect split of MigrationModeChosenPerGroup).
  engine::Topology topo;
  topo.AddOperator("big", 2, /*state_bytes_per_group=*/8 << 20);
  topo.AddOperator("small", 2, /*state_bytes_per_group=*/64);
  engine::Cluster cluster(2);
  engine::Assignment assign(topo.num_key_groups());
  for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
    assign.set_node(g, g % 2);
  }
  ops::SumByKeyOperator big(2, ops::GroupField::kKey, false);
  ops::SumByKeyOperator small(2, ops::GroupField::kKey, false);
  engine::LocalEngineOptions eopts;
  eopts.mode = engine::ExecutionMode::kBatched;
  eopts.window_every_us = 0;
  engine::LocalEngine engine(&topo, &cluster, assign,
                             std::vector<engine::StreamOperator*>{&big,
                                                                  &small},
                             eopts);
  engine::MemoryCheckpointStore store;
  engine::CheckpointCoordinatorOptions ccopts;
  ccopts.interval_us = int64_t{1} << 60;
  engine::CheckpointCoordinator coordinator(&store, ccopts);
  ASSERT_TRUE(engine.EnableCheckpointing(&coordinator).ok());

  const KeyGroupId big_group = topo.first_group(0);
  const KeyGroupId small_group = topo.first_group(1);
  FixedPlanRebalancer rebalancer({big_group, small_group});
  core::AdaptationFramework framework(&rebalancer, /*policy=*/nullptr, {});
  engine::LoadModel load_model{engine::CostModel{}};
  core::ControllerLoopOptions copts;
  copts.period_every_us = 0;  // use_lease_migration stays default-false
  core::ControllerLoop controller(&engine, &framework, &load_model, &topo,
                                  &cluster, copts);

  for (int i = 0; i < 4000; ++i) {
    Tuple t;
    t.key = static_cast<uint64_t>(i);
    t.ts = i;
    t.num = 1.0;
    ASSERT_TRUE(controller.Ingest(1, t).ok());
    if (i < 8) {
      ASSERT_TRUE(controller.Ingest(0, t).ok());
    }
  }

  const Result<core::ControllerRound> round = controller.RunRoundNow();
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->migrations_applied, 2);
  EXPECT_EQ(round->migrations_lease, 0);
  EXPECT_EQ(round->migrations_indirect, 1);
  EXPECT_EQ(round->migrations_direct, 1);
  for (const core::MigrationDecision& d : round->migration_decisions) {
    EXPECT_EQ(d.est_lease_us, -1.0);  // lease never entered the choice
    EXPECT_EQ(d.mode, d.group == big_group
                          ? engine::MigrationMode::kIndirect
                          : engine::MigrationMode::kDirect);
  }
  (void)small_group;
}

}  // namespace
}  // namespace albic
