#include "common/string_util.h"

#include <gtest/gtest.h>

namespace albic {
namespace {

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(SplitString("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StringFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StringFormat("%s", ""), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimString("  hi  "), "hi");
  EXPECT_EQ(TrimString("\t\nhi\r\n"), "hi");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "x"));
}

}  // namespace
}  // namespace albic
