#include "common/union_find.h"

#include <gtest/gtest.h>

namespace albic {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) EXPECT_FALSE(uf.Connected(i, j));
  }
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Union(1, 3));  // transitively merges {0,1} and {2,3}
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindTest, ChainMergeYieldsOneSet) {
  UnionFind uf(100);
  for (size_t i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.Connected(0, 99));
}

TEST(UnionFindTest, FindIsConsistentRepresentative) {
  UnionFind uf(10);
  uf.Union(1, 2);
  uf.Union(2, 3);
  const size_t root = uf.Find(1);
  EXPECT_EQ(uf.Find(2), root);
  EXPECT_EQ(uf.Find(3), root);
}

}  // namespace
}  // namespace albic
