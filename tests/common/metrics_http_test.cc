// MetricsHttpServer: loopback GET smoke tests. A real client socket hits
// the served endpoint — text exposition at /metrics, JSON snapshot at
// /metrics.json, 404 elsewhere — and Stop/restart lifecycle is exercised
// so examples can hold one server across a run.

#include "common/metrics_http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/metrics_registry.h"

namespace albic {
namespace {

// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the full
// response (status line + headers + body), or "" on connect failure.
std::string Get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::write(fd, req.data() + off, req.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;  // server closes after the response
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(MetricsHttpTest, ServesTextAndJsonAndRejectsUnknownPaths) {
  MetricsRegistry reg;
  reg.Counter("tuples_total")->Add(42);
  reg.Gauge("depth")->Set(7);

  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(&reg, /*port=*/0).ok());
  ASSERT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string text = Get(server.port(), "/metrics");
  EXPECT_NE(text.find("200 OK"), std::string::npos);
  EXPECT_NE(text.find("text/plain"), std::string::npos);
  EXPECT_NE(text.find("tuples_total"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);

  const std::string json = Get(server.port(), "/metrics.json");
  EXPECT_NE(json.find("200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"tuples_total\""), std::string::npos);

  const std::string missing = Get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(MetricsHttpTest, ServesLiveValuesNotAStartSnapshot) {
  MetricsRegistry reg;
  CounterMetric* c = reg.Counter("live_total");
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(&reg, 0).ok());
  c->Add(5);  // published after Start: a scrape must still see it
  const std::string text = Get(server.port(), "/metrics");
  EXPECT_NE(text.find("live_total 5"), std::string::npos);
  c->Add(5);
  const std::string again = Get(server.port(), "/metrics");
  EXPECT_NE(again.find("live_total 10"), std::string::npos);
}

TEST(MetricsHttpTest, LifecycleStopIsIdempotentAndRestartRebinds) {
  MetricsRegistry reg;
  MetricsHttpServer server;
  server.Stop();  // not running: must be a no-op
  ASSERT_TRUE(server.Start(&reg, 0).ok());
  EXPECT_FALSE(server.Start(&reg, 0).ok());  // double start refused
  const int first_port = server.port();
  server.Stop();
  server.Stop();
  ASSERT_TRUE(server.Start(&reg, 0).ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_FALSE(Get(server.port(), "/metrics").empty());
  (void)first_port;
  server.Stop();
}

TEST(MetricsHttpTest, RejectsBadArguments) {
  MetricsRegistry reg;
  MetricsHttpServer server;
  EXPECT_FALSE(server.Start(nullptr, 0).ok());
  EXPECT_FALSE(server.Start(&reg, -1).ok());
  EXPECT_FALSE(server.Start(&reg, 65536).ok());
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace albic
