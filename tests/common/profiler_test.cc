// PhaseAccumulator / PhaseBreakdown: exactness of the exclusive phase
// clock under synthetic timestamps. Every nanosecond must land in exactly
// one phase, nesting must carve inner time out of the enclosing phase,
// and the barrier-merge fold must be lossless — these are the invariants
// the engine's >=95% wall-coverage acceptance rests on.

#include "common/profiler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace albic {
namespace {

int P(WavePhase p) { return static_cast<int>(p); }

TEST(ProfilerTest, PhaseNamesAreStableAndDistinct) {
  // Journal JSON and metric labels depend on these exact strings.
  EXPECT_STREQ(WavePhaseName(WavePhase::kIdle), "idle");
  EXPECT_STREQ(WavePhaseName(WavePhase::kIngest), "ingest");
  EXPECT_STREQ(WavePhaseName(WavePhase::kService), "service");
  EXPECT_STREQ(WavePhaseName(WavePhase::kWaveBarrier), "wave_barrier");
  EXPECT_STREQ(WavePhaseName(WavePhase::kWindow), "window");
  EXPECT_STREQ(WavePhaseName(WavePhase::kCheckpoint), "checkpoint");
  EXPECT_STREQ(WavePhaseName(WavePhase::kMigration), "migration");
  EXPECT_STREQ(WavePhaseName(WavePhase::kRecovery), "recovery");
  for (int a = 0; a < kNumWavePhases; ++a) {
    for (int b = a + 1; b < kNumWavePhases; ++b) {
      EXPECT_STRNE(WavePhaseName(static_cast<WavePhase>(a)),
                   WavePhaseName(static_cast<WavePhase>(b)));
    }
  }
}

TEST(ProfilerTest, SwitchChargesElapsedToThePreviouslyOpenPhase) {
  PhaseAccumulator acc;
  acc.Reset(100);
  EXPECT_EQ(acc.current(), WavePhase::kIdle);
  // 100..130 idle, 130..150 ingest, 150..180 service, back to idle.
  EXPECT_EQ(acc.SwitchTo(WavePhase::kIngest, 130), WavePhase::kIdle);
  EXPECT_EQ(acc.SwitchTo(WavePhase::kService, 150), WavePhase::kIngest);
  EXPECT_EQ(acc.SwitchTo(WavePhase::kIdle, 180), WavePhase::kService);

  PhaseBreakdown out;
  out.EnableFor(1);
  acc.FlushInto(&out, 200);  // trailing 180..200 idle
  EXPECT_EQ(out.ns[P(WavePhase::kIdle)], 30 + 20);
  EXPECT_EQ(out.ns[P(WavePhase::kIngest)], 20);
  EXPECT_EQ(out.ns[P(WavePhase::kService)], 30);
  // Exclusive accounting: phases sum to the full 100ns timeline, exactly.
  EXPECT_EQ(out.TotalNs(), 100);
}

TEST(ProfilerTest, NestedScopesCarveInnerTimeOutOfTheOuterPhase) {
  // Simulates the engine's real nesting — a checkpoint inside the wave
  // barrier — with manual SwitchTo calls standing in for PhaseScope (which
  // reads the real clock). The inner phase's time must NOT double-count.
  PhaseAccumulator acc;
  acc.Reset(0);
  const WavePhase outer_prev = acc.SwitchTo(WavePhase::kWaveBarrier, 10);
  const WavePhase inner_prev = acc.SwitchTo(WavePhase::kCheckpoint, 40);
  EXPECT_EQ(inner_prev, WavePhase::kWaveBarrier);
  acc.SwitchTo(inner_prev, 70);  // inner scope exit restores barrier
  acc.SwitchTo(outer_prev, 90);  // outer scope exit restores idle

  PhaseBreakdown out;
  out.EnableFor(1);
  acc.FlushInto(&out, 100);
  EXPECT_EQ(out.ns[P(WavePhase::kIdle)], 10 + 10);
  EXPECT_EQ(out.ns[P(WavePhase::kWaveBarrier)], 30 + 20);
  EXPECT_EQ(out.ns[P(WavePhase::kCheckpoint)], 30);
  EXPECT_EQ(out.TotalNs(), 100);
}

TEST(ProfilerTest, FlushKeepsTheOpenPhaseRunningAcrossPeriods) {
  PhaseAccumulator acc;
  acc.Reset(0);
  acc.SwitchTo(WavePhase::kService, 10);
  PhaseBreakdown a;
  a.EnableFor(1);
  acc.FlushInto(&a, 50);  // period boundary lands mid-service
  EXPECT_EQ(a.ns[P(WavePhase::kService)], 40);
  EXPECT_EQ(acc.current(), WavePhase::kService);

  PhaseBreakdown b;
  b.EnableFor(1);
  acc.SwitchTo(WavePhase::kIdle, 80);
  acc.FlushInto(&b, 100);
  // The service time after the flush lands in the next period; nothing is
  // lost or double-counted across the boundary.
  EXPECT_EQ(b.ns[P(WavePhase::kService)], 30);
  EXPECT_EQ(b.ns[P(WavePhase::kIdle)], 20);
  EXPECT_EQ(a.TotalNs() + b.TotalNs(), 100);
}

TEST(ProfilerTest, FlushNonIdleDropsOnlyThePoolParkTime) {
  // A pool worker parks in kIdle between waves: that wait must not inflate
  // the merged breakdown, but its service time must all arrive.
  PhaseAccumulator acc;
  acc.Reset(0);
  acc.SwitchTo(WavePhase::kService, 100);
  acc.SwitchTo(WavePhase::kIdle, 160);
  PhaseBreakdown out;
  out.EnableFor(1);
  acc.FlushNonIdleInto(&out, 500);
  EXPECT_EQ(out.ns[P(WavePhase::kService)], 60);
  EXPECT_EQ(out.ns[P(WavePhase::kIdle)], 0);
  EXPECT_EQ(out.TotalNs(), 60);
}

TEST(ProfilerTest, MergeFoldsAndResetsLikeTheWaveBarrier) {
  PhaseBreakdown into;
  into.EnableFor(2);
  into.ns[P(WavePhase::kService)] = 100;
  into.group_service_ns[0] = 60;
  into.group_service_ns[1] = 40;

  PhaseBreakdown from;
  from.EnableFor(2);
  from.ns[P(WavePhase::kService)] = 50;
  from.ns[P(WavePhase::kCheckpoint)] = 25;
  from.group_service_ns[1] = 50;

  into.MergeFrom(&from);
  EXPECT_EQ(into.ns[P(WavePhase::kService)], 150);
  EXPECT_EQ(into.ns[P(WavePhase::kCheckpoint)], 25);
  EXPECT_EQ(into.group_service_ns[0], 60);
  EXPECT_EQ(into.group_service_ns[1], 90);
  // MergeFrom resets the source (fold-and-reset, like MergeStats).
  EXPECT_EQ(from.TotalNs(), 0);
  EXPECT_EQ(from.group_service_ns[1], 0);

  // Merging a disabled breakdown is a no-op, not a crash.
  PhaseBreakdown disabled;
  into.MergeFrom(&disabled);
  EXPECT_EQ(into.ns[P(WavePhase::kService)], 150);
}

TEST(ProfilerTest, CoverageAndDominantPhase) {
  PhaseBreakdown b;
  b.EnableFor(1);
  EXPECT_EQ(b.Coverage(), 0.0);  // no wall stamped yet
  EXPECT_EQ(b.DominantPhase(), WavePhase::kIdle);
  EXPECT_EQ(b.DominantShare(), 0.0);

  b.ns[P(WavePhase::kService)] = 70;
  b.ns[P(WavePhase::kIngest)] = 20;
  b.ns[P(WavePhase::kIdle)] = 10;
  b.wall_ns = 100;
  EXPECT_DOUBLE_EQ(b.Coverage(), 1.0);
  EXPECT_EQ(b.DominantPhase(), WavePhase::kService);
  EXPECT_DOUBLE_EQ(b.DominantShare(), 0.7);

  b.wall_ns = 200;  // half the wall unaccounted
  EXPECT_DOUBLE_EQ(b.Coverage(), 0.5);
}

TEST(ProfilerTest, InertScopeTouchesNothing) {
  // PhaseScope on a null accumulator is the disabled path: it must not
  // read clocks or charge anything (here: simply not crash and change no
  // observable state — there is no accumulator to inspect).
  PhaseScope scope(nullptr, WavePhase::kService);
  SUCCEED();
}

TEST(ProfilerTest, ProfilerClockIsMonotonic) {
  const int64_t a = ProfilerNowNs();
  const int64_t b = ProfilerNowNs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace albic
