#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace albic {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kInfeasible, StatusCode::kUnbounded, StatusCode::kTimedOut,
        StatusCode::kCapacity}) {
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  ALBIC_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ALBIC_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(bad.ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace albic
