#include "common/stats_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace albic {
namespace {

TEST(StatsUtilTest, MeanAndVariance) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
}

TEST(StatsUtilTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbsDeviation({}), 0.0);
}

TEST(StatsUtilTest, MaxAbsDeviationIsLoadDistance) {
  // loads 40, 50, 60 -> mean 50 -> distance 10.
  EXPECT_DOUBLE_EQ(MaxAbsDeviation({40, 50, 60}), 10.0);
  // Asymmetric: underload dominates.
  EXPECT_DOUBLE_EQ(MaxAbsDeviation({10, 55, 55}), 30.0);
}

TEST(StatsUtilTest, MaxAbsDeviationFromExternalMean) {
  EXPECT_DOUBLE_EQ(MaxAbsDeviationFrom({40, 60}, 55.0), 15.0);
}

TEST(StatsUtilTest, Percentile) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsUtilTest, EwmaConverges) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.Add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  for (int i = 0; i < 50; ++i) e.Add(20.0);
  EXPECT_NEAR(e.value(), 20.0, 1e-6);
}

TEST(StatsUtilTest, RunningStats) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  rs.Add(3.0);
  rs.Add(1.0);
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 9.0);
}

}  // namespace
}  // namespace albic
