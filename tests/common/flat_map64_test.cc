// FlatMap64: growth/rehash behaviour, erase (backward-shift deletion) and
// erase-reinsert cycles, iteration under load, and a randomized
// differential test against std::unordered_map.

#include "common/flat_map64.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

namespace albic {
namespace {

TEST(FlatMap64Test, GrowthAndRehashKeepAllEntries) {
  FlatMap64<int64_t> map;
  EXPECT_TRUE(map.empty());
  // Push far past several doublings (16 -> 32 -> ... -> 16384).
  constexpr uint64_t kN = 10000;
  for (uint64_t k = 1; k <= kN; ++k) map[k] = static_cast<int64_t>(k * 3);
  EXPECT_EQ(map.size(), kN);
  for (uint64_t k = 1; k <= kN; ++k) {
    const int64_t* v = map.find(k);
    ASSERT_NE(v, nullptr) << "key " << k << " lost in a rehash";
    EXPECT_EQ(*v, static_cast<int64_t>(k * 3));
  }
  EXPECT_EQ(map.find(kN + 1), nullptr);
  // The zero key lives in its side slot and survives growth.
  map[0] = -7;
  EXPECT_EQ(map.size(), kN + 1);
  EXPECT_EQ(map.at(0), -7);
}

TEST(FlatMap64Test, EraseRemovesAndReinsertWorks) {
  FlatMap64<int64_t> map;
  for (uint64_t k = 1; k <= 500; ++k) map[k] = static_cast<int64_t>(k);
  // Erase every even key; all odd keys must stay reachable (backward-shift
  // deletion must not break any probe chain).
  for (uint64_t k = 2; k <= 500; k += 2) EXPECT_EQ(map.erase(k), 1u);
  EXPECT_EQ(map.size(), 250u);
  for (uint64_t k = 1; k <= 500; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(map.find(k), nullptr) << "erased key " << k << " still found";
    } else {
      ASSERT_NE(map.find(k), nullptr) << "key " << k << " lost by erase";
      EXPECT_EQ(map.at(k), static_cast<int64_t>(k));
    }
  }
  // Erasing a missing key is a no-op.
  EXPECT_EQ(map.erase(2), 0u);
  EXPECT_EQ(map.erase(10001), 0u);
  // Reinsert the erased keys with new values.
  for (uint64_t k = 2; k <= 500; k += 2) map[k] = static_cast<int64_t>(-k);
  EXPECT_EQ(map.size(), 500u);
  for (uint64_t k = 2; k <= 500; k += 2) {
    EXPECT_EQ(map.at(k), static_cast<int64_t>(-k));
  }
  // Zero-key erase path.
  EXPECT_EQ(map.erase(0), 0u);
  map[0] = 42;
  EXPECT_EQ(map.erase(0), 1u);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_EQ(map.size(), 500u);
}

TEST(FlatMap64Test, IterationUnderLoadVisitsEveryEntryOnce) {
  FlatMap64<int64_t> map;
  // Load close to the 3/4 growth threshold and include the zero key, then
  // punch holes with erase: iteration must still visit each survivor once.
  constexpr uint64_t kN = 3000;
  int64_t expected_sum = 0;
  for (uint64_t k = 0; k < kN; ++k) {
    map[k * 2654435761u + 1] = static_cast<int64_t>(k);
  }
  map[0] = 1000000;
  for (uint64_t k = 0; k < kN; k += 3) map.erase(k * 2654435761u + 1);
  std::unordered_map<uint64_t, int64_t> reference;
  for (uint64_t k = 0; k < kN; ++k) {
    if (k % 3 != 0) reference[k * 2654435761u + 1] = static_cast<int64_t>(k);
  }
  reference[0] = 1000000;
  for (const auto& [key, value] : reference) expected_sum += value;

  int64_t sum = 0;
  size_t visited = 0;
  for (const auto& [key, value] : map) {
    ++visited;
    sum += value;
    auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "iterator yielded phantom key " << key;
    EXPECT_EQ(it->second, value);
  }
  EXPECT_EQ(visited, reference.size());
  EXPECT_EQ(map.size(), reference.size());
  EXPECT_EQ(sum, expected_sum);
}

TEST(FlatMap64Test, RandomizedDifferentialAgainstUnorderedMap) {
  std::mt19937_64 rng(0xA1B1C5ull);
  FlatMap64<int64_t> map;
  std::unordered_map<uint64_t, int64_t> reference;
  // Small key space so inserts, hits, erases and re-inserts all happen
  // frequently; occasional clear() exercises the wholesale reset.
  std::uniform_int_distribution<uint64_t> key_dist(0, 400);
  std::uniform_int_distribution<int> op_dist(0, 99);
  for (int step = 0; step < 200000; ++step) {
    const uint64_t key = key_dist(rng);
    const int op = op_dist(rng);
    if (op < 50) {
      const int64_t value = static_cast<int64_t>(rng());
      map[key] = value;
      reference[key] = value;
    } else if (op < 75) {
      EXPECT_EQ(map.erase(key), reference.erase(key)) << "step " << step;
    } else if (op < 99) {
      const int64_t* v = map.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(v, nullptr) << "step " << step << " key " << key;
      } else {
        ASSERT_NE(v, nullptr) << "step " << step << " key " << key;
        EXPECT_EQ(*v, it->second);
      }
    } else {
      map.clear();
      reference.clear();
    }
    EXPECT_EQ(map.size(), reference.size());
  }
  // Full final sweep both ways.
  for (const auto& [key, value] : reference) {
    ASSERT_NE(map.find(key), nullptr) << "key " << key;
    EXPECT_EQ(map.at(key), value);
  }
  size_t visited = 0;
  for (const auto& [key, value] : map) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "phantom key " << key;
    EXPECT_EQ(it->second, value);
  }
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatMap64Test, IncrementalRehashBoundsPerOperationWork) {
  // With incremental rehashing on from the start, no operation ever
  // absorbs a one-shot rehash of live entries, and no single operation
  // migrates more than kDrainBudget old slots — the bound that keeps a
  // wave's pause flat while state grows through many doublings.
  FlatMap64<int64_t> inc;
  inc.SetIncrementalRehash(true);
  FlatMap64<int64_t> legacy;
  constexpr uint64_t kN = 60000;
  for (uint64_t k = 1; k <= kN; ++k) {
    const uint64_t key = k * 2654435761u + 17;
    inc[key] = static_cast<int64_t>(k);
    legacy[key] = static_cast<int64_t>(k);
  }
  EXPECT_EQ(inc.full_rehashes(), 0u);
  EXPECT_LE(inc.max_drain_step(), FlatMap64<int64_t>::kDrainBudget);
  // The one-shot scheme paid the stop-the-world rehashes instead.
  EXPECT_GT(legacy.full_rehashes(), 0u);
  EXPECT_EQ(inc.size(), legacy.size());
  for (uint64_t k = 1; k <= kN; ++k) {
    const uint64_t key = k * 2654435761u + 17;
    const int64_t* v = inc.find(key);
    ASSERT_NE(v, nullptr) << "key " << key << " lost across a drain";
    EXPECT_EQ(*v, static_cast<int64_t>(k));
  }
}

TEST(FlatMap64Test, RandomizedDifferentialIncrementalRehash) {
  // Incremental map (with mid-stream mode toggles) vs the one-shot map vs
  // std::unordered_map: inserts, erases and lookups that land mid-drain —
  // in both tables, with backward shifts on either side — must be
  // indistinguishable from the single-table behaviour.
  std::mt19937_64 rng(0xD1FF5EEDull);
  FlatMap64<int64_t> inc;
  inc.SetIncrementalRehash(true);
  FlatMap64<int64_t> legacy;
  std::unordered_map<uint64_t, int64_t> reference;
  // Key space sized to push through several doublings while keeping
  // erase/re-insert hits frequent.
  std::uniform_int_distribution<uint64_t> key_dist(0, 6000);
  std::uniform_int_distribution<int> op_dist(0, 99);
  bool on = true;
  for (int step = 0; step < 150000; ++step) {
    const uint64_t key = key_dist(rng);
    const int op = op_dist(rng);
    if (op < 45) {
      const int64_t value = static_cast<int64_t>(rng());
      inc[key] = value;
      legacy[key] = value;
      reference[key] = value;
    } else if (op < 65) {
      const size_t erased = reference.erase(key);
      EXPECT_EQ(inc.erase(key), erased) << "step " << step;
      EXPECT_EQ(legacy.erase(key), erased) << "step " << step;
    } else if (op < 90) {
      const int64_t* v = inc.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(v, nullptr) << "step " << step << " key " << key;
      } else {
        ASSERT_NE(v, nullptr) << "step " << step << " key " << key;
        EXPECT_EQ(*v, it->second);
      }
    } else if (op < 92) {
      inc.clear();
      legacy.clear();
      reference.clear();
    } else {
      // Toggling off mid-drain finishes the drain (single-table invariant);
      // toggling back on re-arms incremental growth.
      on = !on;
      inc.SetIncrementalRehash(on);
    }
    EXPECT_EQ(inc.size(), reference.size()) << "step " << step;
  }
  EXPECT_LE(inc.max_drain_step(), FlatMap64<int64_t>::kDrainBudget);
  for (const auto& [key, value] : reference) {
    ASSERT_NE(inc.find(key), nullptr) << "key " << key;
    EXPECT_EQ(inc.at(key), value);
    ASSERT_NE(legacy.find(key), nullptr) << "key " << key;
    EXPECT_EQ(legacy.at(key), value);
  }
  size_t visited = 0;
  for (const auto& [key, value] : inc) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end()) << "phantom key " << key;
    EXPECT_EQ(it->second, value);
  }
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatMap64Test, ReserveEndsAtGrownCapacityWithoutRehashes) {
  // Reserve(n) + n inserts must pay zero rehashes of live entries and land
  // on exactly the capacity insertion-driven growth reaches — pinned
  // observably: the NEXT doubling fires at the same insert count for the
  // reserved map as for a grown one.
  for (const size_t n : {1ul, 12ul, 1000ul, 5000ul}) {
    FlatMap64<int64_t> grown;
    FlatMap64<int64_t> reserved;
    reserved.Reserve(n);
    for (size_t k = 1; k <= n; ++k) {
      const uint64_t key = k * 2654435761u + 3;
      grown[key] = static_cast<int64_t>(k);
      reserved[key] = static_cast<int64_t>(k);
    }
    EXPECT_EQ(reserved.full_rehashes(), 0u) << "n = " << n;
    EXPECT_EQ(reserved.size(), grown.size());
    for (size_t k = 1; k <= n; ++k) {
      const uint64_t key = k * 2654435761u + 3;
      ASSERT_NE(reserved.find(key), nullptr) << "n = " << n << " key " << key;
      EXPECT_EQ(reserved.at(key), grown.at(key));
    }
    // Same final capacity: keep inserting and the two maps must cross the
    // 3/4 growth threshold on exactly the same insert.
    const size_t grown_base = grown.full_rehashes();
    for (size_t extra = 1; extra <= n + 16; ++extra) {
      const uint64_t key = (n + extra) * 2654435761u + 3;
      grown[key] = 1;
      reserved[key] = 1;
      ASSERT_EQ(reserved.full_rehashes() > 0, grown.full_rehashes() > grown_base)
          << "n = " << n << " extra = " << extra;
      if (reserved.full_rehashes() > 0) break;
    }
    EXPECT_GT(reserved.full_rehashes(), 0u) << "n = " << n;
  }
  // Reserve(0) and a shrinking Reserve are no-ops.
  FlatMap64<int64_t> map;
  map.Reserve(0);
  EXPECT_TRUE(map.empty());
  for (uint64_t k = 1; k <= 100; ++k) map[k] = static_cast<int64_t>(k);
  map.Reserve(1);
  EXPECT_EQ(map.size(), 100u);
  for (uint64_t k = 1; k <= 100; ++k) EXPECT_EQ(map.at(k), static_cast<int64_t>(k));
}

}  // namespace
}  // namespace albic
