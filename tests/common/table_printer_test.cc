#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace albic {
namespace {

std::string Render(const TablePrinter& table, bool csv = false) {
  std::FILE* f = std::tmpfile();
  if (csv) {
    table.PrintCsv(f);
  } else {
    table.Print(f);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  size_t read = std::fread(out.data(), 1, out.size(), f);
  out.resize(read);
  std::fclose(f);
  return out;
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string out = Render(t);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, DoubleRowsFormatted) {
  TablePrinter t({"a", "b"});
  t.AddDoubleRow(std::vector<double>{1.234, 5.0}, 1);
  const std::string out = Render(t);
  EXPECT_NE(out.find("1.2"), std::string::npos);
  EXPECT_NE(out.find("5.0"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(Render(t, /*csv=*/true), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace albic
