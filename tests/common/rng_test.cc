#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace albic {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.NextU64() == b.NextU64() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndCoversEndpoints) {
  Rng rng(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    lo |= v == 3;
    hi |= v == 7;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double sum = 0;
  for (size_t i = 0; i < z.size(); ++i) sum += z.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfSampler z(100, 1.2);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(50));
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfSampler z(20, 1.0);
  Rng rng(23);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.Pmf(r), 0.01);
  }
}

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfSampler z(10, 0.0);
  for (size_t i = 0; i < z.size(); ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-12);
}

}  // namespace
}  // namespace albic
