// MetricsRegistry: series identity under labels, concurrent publishing
// (exercised under TSan in CI), and the exposition formats downstream
// tooling parses — Prometheus text and the JSON snapshot.

#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace albic {
namespace {

TEST(MetricsRegistryTest, GetOrCreateReturnsStableTypedPointers) {
  MetricsRegistry reg;
  CounterMetric* c = reg.Counter("requests_total");
  c->Increment();
  c->Add(2);
  EXPECT_EQ(c->value(), 3);
  // Same name resolves to the same series — totals accumulate.
  EXPECT_EQ(reg.Counter("requests_total"), c);
  EXPECT_EQ(reg.NumSeries(), 1u);

  GaugeMetric* g = reg.Gauge("depth");
  g->Set(7);
  g->SetMax(3);  // lower than current: no-op
  EXPECT_EQ(g->value(), 7);
  g->SetMax(9);
  EXPECT_EQ(g->value(), 9);
  EXPECT_EQ(reg.NumSeries(), 2u);
}

TEST(MetricsRegistryTest, LabelsDistinguishSeriesAndOrderDoesNot) {
  MetricsRegistry reg;
  CounterMetric* ab = reg.Counter("m", {{"a", "1"}, {"b", "2"}});
  CounterMetric* ba = reg.Counter("m", {{"b", "2"}, {"a", "1"}});
  // Labels are sorted at registration: the same set in any order is the
  // same series.
  EXPECT_EQ(ab, ba);
  // A different value, a different key, or no labels at all are each their
  // own series.
  EXPECT_NE(ab, reg.Counter("m", {{"a", "1"}, {"b", "3"}}));
  EXPECT_NE(ab, reg.Counter("m", {{"a", "1"}}));
  EXPECT_NE(ab, reg.Counter("m"));
  EXPECT_EQ(reg.NumSeries(), 4u);
}

TEST(MetricsRegistryTest, ConcurrentPublishAndRegistration) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  CounterMetric* shared = reg.Counter("shared_total");
  GaugeMetric* highwater = reg.Gauge("highwater");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread hammers the shared counter, races SetMax on the shared
      // gauge, and registers its own labeled series mid-flight (the
      // lock-sharded get-or-create path).
      CounterMetric* own =
          reg.Counter("per_thread_total", {{"thread", std::to_string(t)}});
      for (int i = 0; i < kIncrements; ++i) {
        shared->Increment();
        own->Increment();
        highwater->SetMax(t * kIncrements + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(shared->value(), int64_t{kThreads} * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        reg.Counter("per_thread_total", {{"thread", std::to_string(t)}})
            ->value(),
        kIncrements);
  }
  EXPECT_EQ(highwater->value(), (kThreads - 1) * kIncrements + kIncrements - 1);
  EXPECT_EQ(reg.NumSeries(), 2u + kThreads);
}

TEST(MetricsRegistryTest, TextExpositionGolden) {
  MetricsRegistry reg;
  reg.Counter("requests_total", {{"method", "get"}})->Add(3);
  reg.Counter("requests_total", {{"method", "put"}})->Add(1);
  reg.Gauge("depth")->Set(7);
  // Sorted by name, then labels; one `name{labels} value` line per series.
  EXPECT_EQ(reg.TextExposition(),
            "depth 7\n"
            "requests_total{method=\"get\"} 3\n"
            "requests_total{method=\"put\"} 1\n");
}

TEST(MetricsRegistryTest, HistogramExposition) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.Histogram("latency_us", {{"op", "topk"}});
  for (int i = 0; i < 100; ++i) h->Record(1000);
  const std::string text = reg.TextExposition();
  // Summary-style lines: quantiles join the series labels; _count and _sum
  // ride alongside.
  EXPECT_NE(text.find("latency_us{op=\"topk\",quantile=\"0.5\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us{op=\"topk\",quantile=\"0.99\"} "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_count{op=\"topk\"} 100\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_sum{op=\"topk\"} "), std::string::npos)
      << text;
  // The quantile values come straight from the histogram snapshot.
  const LogHistogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), 100);
  EXPECT_NE(text.find("latency_us{op=\"topk\",quantile=\"0.5\"} " +
                      std::to_string(snap.Percentile(50.0))),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, JsonSnapshotRoundTrips) {
  MetricsRegistry reg;
  reg.Counter("c_total", {{"k", "v"}})->Add(42);
  reg.Gauge("g")->Set(-5);
  reg.Histogram("h_us")->Record(10);
  EXPECT_EQ(
      reg.JsonSnapshot(),
      "{\"metrics\":["
      "{\"name\":\"c_total\",\"labels\":{\"k\":\"v\"},\"type\":\"counter\","
      "\"value\":42},"
      "{\"name\":\"g\",\"labels\":{},\"type\":\"gauge\",\"value\":-5},"
      "{\"name\":\"h_us\",\"labels\":{},\"type\":\"histogram\",\"count\":1,"
      "\"p50\":" +
          std::to_string(reg.Histogram("h_us")->Snapshot().Percentile(50.0)) +
          ",\"p99\":" +
          std::to_string(reg.Histogram("h_us")->Snapshot().Percentile(99.0)) +
          ",\"max\":10}]}");
}

TEST(MetricsRegistryTest, LabelValuesEscape) {
  MetricsRegistry reg;
  reg.Counter("weird", {{"v", "a\"b\\c\nd"}})->Increment();
  EXPECT_EQ(reg.TextExposition(), "weird{v=\"a\\\"b\\\\c\\nd\"} 1\n");
  EXPECT_EQ(reg.JsonSnapshot(),
            "{\"metrics\":[{\"name\":\"weird\",\"labels\":"
            "{\"v\":\"a\\\"b\\\\c\\nd\"},\"type\":\"counter\","
            "\"value\":1}]}");
}

}  // namespace
}  // namespace albic
