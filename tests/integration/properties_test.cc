// Property-style parameterized sweeps over random instances: invariants the
// optimizers must hold for every seed.

#include <gtest/gtest.h>

#include <cmath>

#include "balance/flux_rebalancer.h"
#include "balance/local_search.h"
#include "balance/milp_rebalancer.h"
#include "common/rng.h"
#include "core/albic.h"
#include "engine/load_model.h"

namespace albic {
namespace {

using balance::BalanceItem;
using balance::RebalanceConstraints;
using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::NodeId;
using engine::SystemSnapshot;
using engine::Topology;

struct RandomInstance {
  Topology topo;
  Cluster cluster;
  SystemSnapshot snap;

  RandomInstance(uint64_t seed, int nodes, int groups, int marked = 0)
      : cluster(nodes) {
    Rng rng(seed);
    topo.AddOperator("op", groups, 1 << 20);
    Assignment assign(groups);
    for (KeyGroupId g = 0; g < groups; ++g) {
      assign.set_node(g, static_cast<NodeId>(
                             rng.Index(static_cast<size_t>(nodes))));
    }
    snap.topology = &topo;
    snap.cluster = &cluster;
    snap.assignment = assign;
    for (KeyGroupId g = 0; g < groups; ++g) {
      snap.group_loads.push_back(rng.Uniform(0.5, 8.0));
      snap.migration_costs.push_back(rng.Uniform(0.5, 2.0));
    }
    for (int m = 0; m < marked; ++m) {
      EXPECT_TRUE(cluster.MarkForRemoval(m).ok());
    }
  }

  double InitialDistance() const {
    std::vector<double> loads(cluster.num_nodes_total(), 0.0);
    for (KeyGroupId g = 0; g < snap.assignment.num_groups(); ++g) {
      loads[snap.assignment.node_of(g)] += snap.group_loads[g];
    }
    return engine::LoadDistance(loads, cluster);
  }
};

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededProperty, LocalSearchNeverExceedsCountBudget) {
  RandomInstance inst(GetParam(), 8, 96);
  RebalanceConstraints cons;
  cons.max_migrations = 7;
  balance::LocalSearchOptions opts;
  opts.time_budget_ms = 8;
  opts.seed = GetParam();
  auto sol = balance::LocalSearchSolver::Solve(
      inst.snap, balance::ItemsFromGroups(inst.snap), cons, opts);
  ASSERT_TRUE(sol.ok());
  // Recount from scratch: groups whose node differs from the original q.
  int moved = 0;
  for (KeyGroupId g = 0; g < inst.snap.assignment.num_groups(); ++g) {
    if (sol->item_node[static_cast<size_t>(g)] !=
        inst.snap.assignment.node_of(g)) {
      ++moved;
    }
  }
  EXPECT_LE(moved, 7);
  EXPECT_EQ(moved, sol->used_count);
}

TEST_P(SeededProperty, LocalSearchNeverExceedsCostBudget) {
  RandomInstance inst(GetParam(), 6, 72);
  RebalanceConstraints cons;
  cons.max_migration_cost = 6.0;
  balance::LocalSearchOptions opts;
  opts.time_budget_ms = 8;
  opts.seed = GetParam() ^ 0xff;
  auto sol = balance::LocalSearchSolver::Solve(
      inst.snap, balance::ItemsFromGroups(inst.snap), cons, opts);
  ASSERT_TRUE(sol.ok());
  double cost = 0.0;
  for (KeyGroupId g = 0; g < inst.snap.assignment.num_groups(); ++g) {
    if (sol->item_node[static_cast<size_t>(g)] !=
        inst.snap.assignment.node_of(g)) {
      cost += inst.snap.migration_costs[g];
    }
  }
  EXPECT_LE(cost, 6.0 + 1e-9);
}

TEST_P(SeededProperty, LocalSearchNeverWorsensTheObjective) {
  RandomInstance inst(GetParam(), 10, 120);
  RebalanceConstraints cons;
  cons.max_migrations = 10;
  balance::LocalSearchOptions opts;
  opts.time_budget_ms = 8;
  opts.seed = GetParam();
  auto sol = balance::LocalSearchSolver::Solve(
      inst.snap, balance::ItemsFromGroups(inst.snap), cons, opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->load_distance, inst.InitialDistance() + 1e-9);
}

TEST_P(SeededProperty, FluxNeverWorsensDistanceAndRespectsBudget) {
  RandomInstance inst(GetParam(), 8, 80);
  balance::FluxRebalancer flux;
  RebalanceConstraints cons;
  cons.max_migrations = 6;
  auto plan = flux.ComputePlan(inst.snap, cons);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->migrations.size(), 6u);
  EXPECT_LE(plan->predicted_load_distance, inst.InitialDistance() + 1e-9);
}

TEST_P(SeededProperty, MilpHeuristicBeatsOrMatchesFlux) {
  // The paper's core Figs 2-4 claim, as an invariant: under the same
  // migration budget, the MILP's balance is at least as good as Flux's.
  RandomInstance inst(GetParam(), 10, 150);
  RebalanceConstraints cons;
  cons.max_migrations = 10;
  balance::FluxRebalancer flux;
  auto flux_plan = flux.ComputePlan(inst.snap, cons);
  ASSERT_TRUE(flux_plan.ok());
  balance::MilpRebalancerOptions mopts;
  mopts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 25;
  mopts.seed = GetParam();
  balance::MilpRebalancer milp(mopts);
  auto milp_plan = milp.ComputePlan(inst.snap, cons);
  ASSERT_TRUE(milp_plan.ok());
  EXPECT_LE(milp_plan->predicted_load_distance,
            flux_plan->predicted_load_distance + 1e-6);
}

TEST_P(SeededProperty, ExactMilpDominatesHeuristicOnSmallInstances) {
  RandomInstance inst(GetParam(), 3, 12);
  RebalanceConstraints cons;
  balance::MilpRebalancerOptions exact_opts;
  exact_opts.mode = balance::MilpRebalancerOptions::Mode::kExact;
  exact_opts.time_budget_ms = 4000;
  balance::MilpRebalancer exact(exact_opts);
  auto pe = exact.ComputePlan(inst.snap, cons);
  ASSERT_TRUE(pe.ok());
  balance::MilpRebalancerOptions heur_opts;
  heur_opts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  heur_opts.time_budget_ms = 10;
  heur_opts.seed = GetParam();
  balance::MilpRebalancer heur(heur_opts);
  auto ph = heur.ComputePlan(inst.snap, cons);
  ASSERT_TRUE(ph.ok());
  EXPECT_LE(pe->predicted_load_distance,
            ph->predicted_load_distance + 1e-6);
}

TEST_P(SeededProperty, DrainIsMonotoneUnderRepeatedRounds) {
  RandomInstance inst(GetParam(), 6, 60, /*marked=*/2);
  balance::MilpRebalancerOptions mopts;
  mopts.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  mopts.time_budget_ms = 8;
  balance::MilpRebalancer milp(mopts);
  RebalanceConstraints cons;
  cons.max_migrations = 4;
  int remaining = inst.snap.assignment.count_on(0) +
                  inst.snap.assignment.count_on(1);
  for (int round = 0; round < 12 && remaining > 0; ++round) {
    auto plan = milp.ComputePlan(inst.snap, cons);
    ASSERT_TRUE(plan.ok());
    // Lemma 1: nothing moves INTO the marked nodes.
    for (const auto& m : plan->migrations) {
      EXPECT_NE(m.to, 0);
      EXPECT_NE(m.to, 1);
    }
    inst.snap.assignment = plan->assignment;
    const int now = inst.snap.assignment.count_on(0) +
                    inst.snap.assignment.count_on(1);
    EXPECT_LE(now, remaining);
    remaining = now;
  }
  EXPECT_EQ(remaining, 0) << "drain did not complete";
}

TEST_P(SeededProperty, AlbicNeverSplitsItsCollocatedPairs) {
  // Pre-collocated heavy pairs must move as units through an ALBIC round.
  const uint64_t seed = GetParam();
  Topology topo;
  Cluster cluster(4);
  const int pairs = 10;
  topo.AddOperator("up", pairs, 1 << 20);
  topo.AddOperator("down", pairs, 1 << 20);
  ASSERT_TRUE(
      topo.AddStream(0, 1, engine::PartitioningPattern::kOneToOne).ok());
  engine::CommMatrix comm(2 * pairs);
  Assignment assign(2 * pairs);
  Rng rng(seed);
  for (KeyGroupId g = 0; g < pairs; ++g) {
    const NodeId n = static_cast<NodeId>(rng.Index(4));
    assign.set_node(g, n);
    assign.set_node(pairs + g, n);  // already collocated
    comm.Add(g, pairs + g, 10.0);
  }
  SystemSnapshot snap;
  snap.topology = &topo;
  snap.cluster = &cluster;
  snap.comm = &comm;
  snap.assignment = assign;
  snap.group_loads.assign(static_cast<size_t>(2 * pairs), 5.0);
  snap.migration_costs.assign(static_cast<size_t>(2 * pairs), 1.0);
  snap.node_loads.assign(4, 0.0);
  for (KeyGroupId g = 0; g < 2 * pairs; ++g) {
    snap.node_loads[assign.node_of(g)] += snap.group_loads[g];
  }
  core::AlbicOptions aopts;
  aopts.milp.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  aopts.milp.time_budget_ms = 10;
  aopts.seed = seed;
  core::Albic albic(aopts);
  RebalanceConstraints cons;
  cons.max_migrations = 8;
  auto plan = albic.ComputePlan(snap, cons);
  ASSERT_TRUE(plan.ok());
  if (plan->predicted_load_distance <= 10.0) {  // collocation mode active
    for (KeyGroupId g = 0; g < pairs; ++g) {
      EXPECT_EQ(plan->assignment.node_of(g),
                plan->assignment.node_of(pairs + g))
          << "pair " << g << " split by ALBIC";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace albic
