// End-to-end: the real tuple runtime (LocalEngine) executing Real Job 2's
// operators, with ALBIC discovering the per-plane collocation at runtime
// from the runtime's own measured statistics — the full §5.4 loop, scaled
// down.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/albic.h"
#include "engine/local_engine.h"
#include "engine/migration.h"
#include "ops/aggregate.h"
#include "ops/extract.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::Assignment;
using engine::Cluster;
using engine::KeyGroupId;
using engine::LocalEngine;
using engine::NodeId;
using engine::Topology;

constexpr int kNodes = 4;
constexpr int kGroups = 8;  // per operator

struct Job2 {
  Topology topo;
  Cluster cluster{kNodes};
  ops::DelayExtractOperator extract{kGroups};
  ops::SumByKeyOperator sum{kGroups, ops::GroupField::kKey,
                            /*emit_updates=*/false};
  std::unique_ptr<LocalEngine> engine;

  Job2() {
    topo.AddOperator("extract", kGroups, 1 << 16);
    topo.AddOperator("sum", kGroups, 1 << 16);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kOneToOne).ok());
    // Adversarial start: partner groups on different nodes.
    Assignment assign(2 * kGroups);
    for (int i = 0; i < kGroups; ++i) {
      assign.set_node(i, i % kNodes);
      assign.set_node(kGroups + i, (i + kNodes / 2) % kNodes);
    }
    engine::LocalEngineOptions opts;
    opts.serde_cost = 1.0;
    opts.window_every_us = 0;
    engine = std::make_unique<LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&extract, &sum}, opts);
  }
};

TEST(EndToEndTest, AlbicCollocatesRealJob2FromRuntimeStats) {
  Job2 job;
  workload::AirlineFlightStream flights(200, 12, 77);

  core::AlbicOptions aopts;
  aopts.milp.mode = balance::MilpRebalancerOptions::Mode::kHeuristic;
  aopts.milp.time_budget_ms = 10;
  core::Albic albic(aopts);
  engine::MigrationCostModel mig_model;

  double first_period_work = 0.0;
  double last_period_work = 0.0;
  double total_delay_injected = 0.0;

  for (int period = 0; period < 12; ++period) {
    for (int i = 0; i < 1500; ++i) {
      engine::Tuple t = flights.Next();
      total_delay_injected += t.num;
      ASSERT_TRUE(job.engine->Inject(0, t).ok());
    }
    engine::EnginePeriodStats stats = job.engine->HarvestPeriod();
    const double period_work = std::accumulate(stats.node_work.begin(),
                                               stats.node_work.end(), 0.0);
    if (period == 0) first_period_work = period_work;
    last_period_work = period_work;

    // Build the controller's snapshot from the runtime's measurements,
    // normalized into percent-of-node scale (the controller's statistics
    // job): total work maps to a 50% mean cluster load.
    const double scale =
        period_work > 0.0 ? kNodes * 50.0 / period_work : 1.0;
    engine::SystemSnapshot snap;
    snap.topology = &job.topo;
    snap.cluster = &job.cluster;
    snap.comm = &stats.comm;
    snap.assignment = job.engine->assignment();
    snap.group_loads = stats.group_work;
    for (double& l : snap.group_loads) l *= scale;
    snap.node_loads = stats.node_work;
    for (double& l : snap.node_loads) l *= scale;
    snap.migration_costs = engine::AllMigrationCosts(job.topo, mig_model);

    balance::RebalanceConstraints cons;
    cons.max_migrations = 3;
    auto plan = albic.ComputePlan(snap, cons);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    for (const engine::Migration& m : plan->migrations) {
      ASSERT_TRUE(job.engine->MigrateGroup(m.group, m.to).ok());
    }
  }

  // Collocation discovered: one-to-one partners ended up together for most
  // pairs, so serde work fell measurably.
  int collocated_pairs = 0;
  for (int i = 0; i < kGroups; ++i) {
    if (job.engine->assignment().node_of(i) ==
        job.engine->assignment().node_of(kGroups + i)) {
      ++collocated_pairs;
    }
  }
  EXPECT_GE(collocated_pairs, kGroups / 2);
  EXPECT_LT(last_period_work, first_period_work * 0.95);

  // State integrity across all migrations: every injected delay minute is
  // accounted for in the sums (extract drops only on-time flights).
  double total_summed = 0.0;
  for (int g = 0; g < kGroups; ++g) total_summed += job.sum.GroupTotal(g);
  EXPECT_NEAR(total_summed, total_delay_injected, 1e-6);
}

TEST(EndToEndTest, MigrationsDuringTrafficLoseNothing) {
  Job2 job;
  workload::AirlineFlightStream flights(100, 10, 13);
  double injected = 0.0;
  // Interleave messages and migrations aggressively.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      engine::Tuple t = flights.Next();
      injected += t.num;
      ASSERT_TRUE(job.engine->Inject(0, t).ok());
    }
    const KeyGroupId g = static_cast<KeyGroupId>(round % (2 * kGroups));
    const NodeId target =
        (job.engine->assignment().node_of(g) + 1) % kNodes;
    ASSERT_TRUE(job.engine->StartMigration(g, target).ok());
    // Traffic lands while the group is in flight.
    for (int i = 0; i < 10; ++i) {
      engine::Tuple t = flights.Next();
      injected += t.num;
      ASSERT_TRUE(job.engine->Inject(0, t).ok());
    }
    ASSERT_TRUE(job.engine->FinishMigration(g).ok());
  }
  double summed = 0.0;
  for (int g = 0; g < kGroups; ++g) summed += job.sum.GroupTotal(g);
  EXPECT_NEAR(summed, injected, 1e-6);
}

}  // namespace
}  // namespace albic
