// End-to-end correctness of the Real Job 1 pipeline on the tuple runtime:
// the distributed GeoHash -> windowed TopK -> global TopK answer must agree
// with an offline single-pass reference over the same stream — including
// across migrations performed mid-window.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "engine/local_engine.h"
#include "ops/geohash.h"
#include "ops/topk.h"
#include "workload/streams.h"

namespace albic {
namespace {

using engine::KeyGroupId;
using engine::Tuple;

constexpr int kNodes = 4;
constexpr int kGroups = 8;
constexpr int64_t kWindowUs = 60LL * 1000 * 1000;

struct Pipeline {
  engine::Topology topo;
  engine::Cluster cluster{kNodes};
  ops::GeoHashOperator geohash{kGroups, 256};
  ops::WindowedTopKOperator topk{kGroups, 64};  // large K: no truncation
  ops::WindowedTopKOperator global{kGroups, 64, ops::TopKCountMode::kSumNum};
  std::unique_ptr<engine::LocalEngine> engine;

  Pipeline() {
    topo.AddOperator("geohash", kGroups, 1 << 14);
    topo.AddOperator("topk", kGroups, 1 << 14);
    topo.AddOperator("global", kGroups, 1 << 14);
    EXPECT_TRUE(
        topo.AddStream(0, 1, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    EXPECT_TRUE(
        topo.AddStream(1, 2, engine::PartitioningPattern::kFullPartitioning)
            .ok());
    engine::Assignment assign(topo.num_key_groups());
    for (KeyGroupId g = 0; g < topo.num_key_groups(); ++g) {
      assign.set_node(g, g % kNodes);
    }
    engine::LocalEngineOptions opts;
    opts.window_every_us = kWindowUs;
    engine = std::make_unique<engine::LocalEngine>(
        &topo, &cluster, assign,
        std::vector<engine::StreamOperator*>{&geohash, &topk, &global},
        opts);
  }

  /// Edit counts per article in the last closed window, merged over the
  /// global groups.
  std::map<uint64_t, int64_t> GlobalCounts() const {
    std::map<uint64_t, int64_t> out;
    for (int g = 0; g < kGroups; ++g) {
      for (const auto& [article, count] : global.last_window_top(g)) {
        out[article] += count;
      }
    }
    return out;
  }
};

TEST(WikiPipelineTest, GlobalTopKMatchesOfflineReferencePerWindow) {
  Pipeline p;
  workload::WikipediaEditStream edits(300, 101, /*rate_per_second=*/400.0);

  std::map<uint64_t, int64_t> reference;  // current-window offline counts
  std::map<uint64_t, int64_t> reference_last_closed;
  int64_t window_origin = -1;
  int windows_checked = 0;

  for (int i = 0; i < 90000; ++i) {  // ~3.7 minutes of event time
    Tuple t = edits.Next();
    if (window_origin < 0) window_origin = t.ts;
    // Detect window boundary the same way the engine does (origin at the
    // first event's time).
    while (t.ts - window_origin >= kWindowUs) {
      window_origin += kWindowUs;
      reference_last_closed = std::move(reference);
      reference.clear();
      ++windows_checked;
    }
    reference[t.key] += 1;
    ASSERT_TRUE(p.engine->Inject(0, t).ok());
    // Exercise migration-under-load: move a rotating group every ~2000
    // tuples.
    if (i % 2000 == 1999) {
      const KeyGroupId g =
          static_cast<KeyGroupId>((i / 2000) % p.topo.num_key_groups());
      const engine::NodeId target =
          (p.engine->assignment().node_of(g) + 1) % kNodes;
      ASSERT_TRUE(p.engine->MigrateGroup(g, target).ok());
    }
  }
  ASSERT_GE(windows_checked, 2) << "stream too short to close windows";

  // The pipeline's last closed window must match the offline reference for
  // every article (large K so no truncation; the per-cell TopK emits before
  // the global TopK's same-boundary window closes, because windows fire in
  // topological order).
  std::map<uint64_t, int64_t> actual = p.GlobalCounts();
  ASSERT_FALSE(actual.empty());
  for (const auto& [article, count] : reference_last_closed) {
    EXPECT_EQ(actual[article], count) << "article " << article;
  }
  for (const auto& [article, count] : actual) {
    EXPECT_EQ(reference_last_closed[article], count)
        << "phantom article " << article;
  }
}

TEST(WikiPipelineTest, GeoHashSpreadsLoadAcrossGroups) {
  Pipeline p;
  workload::WikipediaEditStream edits(5000, 33);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(p.engine->Inject(0, edits.Next()).ok());
  }
  engine::EnginePeriodStats stats = p.engine->HarvestPeriod();
  // The topk operator's groups (geohash-keyed, even coverage of Denmark)
  // should all receive work, none dominating.
  const KeyGroupId tk0 = p.topo.first_group(1);
  double min = 1e18, max = 0;
  for (int i = 0; i < kGroups; ++i) {
    min = std::min(min, stats.group_work[tk0 + i]);
    max = std::max(max, stats.group_work[tk0 + i]);
  }
  EXPECT_GT(min, 0.0);
  EXPECT_LT(max, 4.0 * min);
}

}  // namespace
}  // namespace albic
