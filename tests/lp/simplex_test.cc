#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "lp/lp_model.h"

namespace albic::lp {
namespace {

LpSolution MustSolve(const LpModel& m) {
  auto res = SimplexSolver::Solve(m);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return *res;
}

TEST(SimplexTest, TrivialUnconstrainedMinAtBounds) {
  LpModel m;
  m.AddVariable(2.0, 10.0, 1.0);   // min x -> x = 2
  m.AddVariable(0.0, 5.0, -1.0);   // min -y -> y = 5
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
  EXPECT_NEAR(s.values[1], 5.0, 1e-9);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  int x = m.AddVariable(0, kInfinity, 3.0);
  int y = m.AddVariable(0, kInfinity, 2.0);
  m.AddConstraint({{x, 1}, {y, 1}}, Sense::kLe, 4.0);
  m.AddConstraint({{x, 1}, {y, 3}}, Sense::kLe, 6.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-7);
  EXPECT_NEAR(s.values[0], 4.0, 1e-7);
  EXPECT_NEAR(s.values[1], 0.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraintNeedsPhase1) {
  // min x + y s.t. x + y = 10, x <= 4 -> (4, 6), obj 10... any split is 10;
  // check feasibility and objective.
  LpModel m;
  int x = m.AddVariable(0, 4, 1.0);
  int y = m.AddVariable(0, kInfinity, 1.0);
  m.AddConstraint({{x, 1}, {y, 1}}, Sense::kEq, 10.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0] + s.values[1], 10.0, 1e-7);
  EXPECT_NEAR(s.objective, 10.0, 1e-7);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 -> x = 7, y = 3, obj 23.
  LpModel m;
  int x = m.AddVariable(2, kInfinity, 2.0);
  int y = m.AddVariable(3, kInfinity, 3.0);
  m.AddConstraint({{x, 1}, {y, 1}}, Sense::kGe, 10.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 23.0, 1e-7);
  EXPECT_NEAR(s.values[0], 7.0, 1e-7);
  EXPECT_NEAR(s.values[1], 3.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpModel m;
  int x = m.AddVariable(0, 1, 1.0);
  m.AddConstraint({{x, 1}}, Sense::kGe, 5.0);
  LpSolution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  LpModel m;
  int x = m.AddVariable(0, 10, 0.0);
  int y = m.AddVariable(0, 10, 0.0);
  m.AddConstraint({{x, 1}, {y, 1}}, Sense::kEq, 5.0);
  m.AddConstraint({{x, 1}, {y, 1}}, Sense::kEq, 7.0);
  LpSolution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpModel m;
  int x = m.AddVariable(0, kInfinity, -1.0);  // min -x, x unbounded above
  int y = m.AddVariable(0, 1, 0.0);
  m.AddConstraint({{y, 1}}, Sense::kLe, 1.0);
  (void)x;
  LpSolution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RejectsFreeVariables) {
  LpModel m;
  m.AddVariable(-kInfinity, kInfinity, 1.0);
  auto res = SimplexSolver::Solve(m);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, RejectsInvertedBounds) {
  LpModel m;
  m.AddVariable(5.0, 1.0, 1.0);
  auto res = SimplexSolver::Solve(m);
  EXPECT_FALSE(res.ok());
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x s.t. x >= -5 -> -5.
  LpModel m;
  int x = m.AddVariable(-5.0, 5.0, 1.0);
  m.AddConstraint({{x, 1}}, Sense::kLe, 3.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], -5.0, 1e-9);
}

TEST(SimplexTest, BoundFlipPath) {
  // max x + y s.t. x + y <= 3 with x,y in [0,2]: needs one variable at an
  // upper bound (bound flip) and one basic.
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  int x = m.AddVariable(0, 2, 1.0);
  int y = m.AddVariable(0, 2, 1.0);
  m.AddConstraint({{x, 1}, {y, 1}}, Sense::kLe, 3.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(SimplexTest, NegativeRhsRows) {
  // x - y <= -2 with min x + y, x,y >= 0 -> x=0, y=2.
  LpModel m;
  int x = m.AddVariable(0, kInfinity, 1.0);
  int y = m.AddVariable(0, kInfinity, 1.0);
  m.AddConstraint({{x, 1}, {y, -1}}, Sense::kLe, -2.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
  EXPECT_NEAR(s.values[1], 2.0, 1e-7);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  int x = m.AddVariable(0, kInfinity, 1.0);
  int y = m.AddVariable(0, kInfinity, 1.0);
  m.AddConstraint({{x, 1}}, Sense::kLe, 1.0);
  m.AddConstraint({{x, 1}, {y, 0}}, Sense::kLe, 1.0);
  m.AddConstraint({{x, 2}}, Sense::kLe, 2.0);
  m.AddConstraint({{y, 1}}, Sense::kLe, 1.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(SimplexTest, TransportationStyleProblem) {
  // 2 supplies (10, 20), 3 demands (8, 12, 10); costs minimized.
  LpModel m;
  const double cost[2][3] = {{4, 6, 9}, {5, 3, 2}};
  int x[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      x[i][j] = m.AddVariable(0, kInfinity, cost[i][j]);
    }
  }
  m.AddConstraint({{x[0][0], 1}, {x[0][1], 1}, {x[0][2], 1}}, Sense::kLe, 10);
  m.AddConstraint({{x[1][0], 1}, {x[1][1], 1}, {x[1][2], 1}}, Sense::kLe, 20);
  m.AddConstraint({{x[0][0], 1}, {x[1][0], 1}}, Sense::kEq, 8);
  m.AddConstraint({{x[0][1], 1}, {x[1][1], 1}}, Sense::kEq, 12);
  m.AddConstraint({{x[0][2], 1}, {x[1][2], 1}}, Sense::kEq, 10);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  // Optimal: supply1 -> d1 (8@4), supply2 -> d2 (12@3), d3 (10@2): hmm
  // supply2 capacity 20 covers d2+d3 = 22 > 20, so 2 units of d2 from s1.
  // s1: 8@4 + 2@6 = 44; s2: 10@3 + 10@2 = 50; total 94.
  EXPECT_NEAR(s.objective, 94.0, 1e-6);
}

TEST(SimplexTest, FractionalOptimum) {
  // max x + 2y s.t. 3x + 4y <= 12, x + 3y <= 6 -> intersection at
  // (12/5, 6/5), obj = 12/5 + 12/5 = 4.8.
  LpModel m;
  m.set_objective_sense(ObjSense::kMaximize);
  int x = m.AddVariable(0, kInfinity, 1.0);
  int y = m.AddVariable(0, kInfinity, 2.0);
  m.AddConstraint({{x, 3}, {y, 4}}, Sense::kLe, 12.0);
  m.AddConstraint({{x, 1}, {y, 3}}, Sense::kLe, 6.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.8, 1e-7);
  EXPECT_NEAR(s.values[0], 2.4, 1e-6);
  EXPECT_NEAR(s.values[1], 1.2, 1e-6);
}

TEST(SimplexTest, FixedVariableViaEqualBounds) {
  LpModel m;
  int x = m.AddVariable(3, 3, 1.0);  // fixed at 3
  int y = m.AddVariable(0, kInfinity, 1.0);
  m.AddConstraint({{x, 1}, {y, 1}}, Sense::kGe, 5.0);
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
  EXPECT_NEAR(s.values[1], 2.0, 1e-7);
}

TEST(SimplexTest, ManyVariablesBalancedAssignmentRelaxation) {
  // LP relaxation of spreading 12 unit loads over 4 slots evenly: min d
  // s.t. each slot's sum <= 3 + d; sums = constraints force total 12.
  LpModel m;
  const int items = 12, slots = 4;
  std::vector<std::vector<int>> x(items);
  for (int i = 0; i < items; ++i) {
    for (int s = 0; s < slots; ++s) {
      x[i].push_back(m.AddVariable(0, 1, 0.0));
    }
  }
  int d = m.AddVariable(0, kInfinity, 1.0);
  for (int i = 0; i < items; ++i) {
    std::vector<std::pair<int, double>> row;
    for (int s = 0; s < slots; ++s) row.push_back({x[i][s], 1.0});
    m.AddConstraint(std::move(row), Sense::kEq, 1.0);
  }
  for (int s = 0; s < slots; ++s) {
    std::vector<std::pair<int, double>> row;
    for (int i = 0; i < items; ++i) row.push_back({x[i][s], 1.0});
    row.push_back({d, -1.0});
    m.AddConstraint(std::move(row), Sense::kLe, 3.0);
  }
  LpSolution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, 1e-6);  // perfectly balanced LP exists
}

}  // namespace
}  // namespace albic::lp
