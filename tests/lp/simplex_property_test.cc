// Property tests for the simplex solver over randomized instances: the
// returned point must be feasible, and no better than... no worse than any
// known-feasible reference point (constructed by building the constraints
// around it).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace albic::lp {
namespace {

class SimplexProperty : public ::testing::TestWithParam<uint64_t> {};

struct RandomLp {
  LpModel model;
  std::vector<double> feasible_point;
};

/// Builds a random LP that is feasible by construction: pick x0 within
/// bounds, then add rows a'x (<=|>=|=) a'x0 +- slack.
RandomLp BuildFeasibleLp(uint64_t seed, int num_vars, int num_rows) {
  Rng rng(seed);
  RandomLp out;
  for (int j = 0; j < num_vars; ++j) {
    const double lo = rng.Uniform(-5.0, 0.0);
    const double hi = lo + rng.Uniform(1.0, 10.0);
    const double cost = rng.Uniform(-3.0, 3.0);
    out.model.AddVariable(lo, hi, cost);
    out.feasible_point.push_back(rng.Uniform(lo, hi));
  }
  for (int i = 0; i < num_rows; ++i) {
    std::vector<std::pair<int, double>> terms;
    double lhs_at_x0 = 0.0;
    for (int j = 0; j < num_vars; ++j) {
      if (rng.Bernoulli(0.6)) {
        const double coef = rng.Uniform(-4.0, 4.0);
        terms.push_back({j, coef});
        lhs_at_x0 += coef * out.feasible_point[j];
      }
    }
    if (terms.empty()) continue;
    const int kind = static_cast<int>(rng.UniformInt(0, 2));
    if (kind == 0) {
      out.model.AddConstraint(std::move(terms), Sense::kLe,
                              lhs_at_x0 + rng.Uniform(0.0, 3.0));
    } else if (kind == 1) {
      out.model.AddConstraint(std::move(terms), Sense::kGe,
                              lhs_at_x0 - rng.Uniform(0.0, 3.0));
    } else {
      out.model.AddConstraint(std::move(terms), Sense::kEq, lhs_at_x0);
    }
  }
  return out;
}

bool Satisfies(const LpModel& m, const std::vector<double>& x,
               double tol = 1e-5) {
  for (int j = 0; j < m.num_variables(); ++j) {
    if (x[j] < m.variable(j).lower - tol) return false;
    if (x[j] > m.variable(j).upper + tol) return false;
  }
  for (int i = 0; i < m.num_constraints(); ++i) {
    const ConstraintDef& c = m.constraint(i);
    double lhs = 0.0;
    for (const auto& [j, coef] : c.terms) lhs += coef * x[j];
    const double scale = std::max(1.0, std::fabs(c.rhs));
    switch (c.sense) {
      case Sense::kLe:
        if (lhs > c.rhs + tol * scale) return false;
        break;
      case Sense::kGe:
        if (lhs < c.rhs - tol * scale) return false;
        break;
      case Sense::kEq:
        if (std::fabs(lhs - c.rhs) > tol * scale) return false;
        break;
    }
  }
  return true;
}

TEST_P(SimplexProperty, OptimumIsFeasibleAndDominatesReferencePoint) {
  for (int round = 0; round < 10; ++round) {
    RandomLp lp = BuildFeasibleLp(GetParam() * 1000 + round,
                                  /*num_vars=*/6, /*num_rows=*/5);
    auto res = SimplexSolver::Solve(lp.model);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->status, SolveStatus::kOptimal)
        << "feasible-by-construction LP not solved (round " << round << ")";
    EXPECT_TRUE(Satisfies(lp.model, res->values))
        << "returned point violates constraints";
    // Minimization: the optimum is no worse than the construction point.
    EXPECT_LE(res->objective,
              lp.model.ObjectiveValue(lp.feasible_point) + 1e-6);
  }
}

TEST_P(SimplexProperty, MaximizationMirrorsMinimization) {
  RandomLp lp = BuildFeasibleLp(GetParam() ^ 0xabcdef, 5, 4);
  auto min_res = SimplexSolver::Solve(lp.model);
  ASSERT_TRUE(min_res.ok());
  ASSERT_EQ(min_res->status, SolveStatus::kOptimal);

  // Negate all costs and maximize: optimum value must be the negation.
  LpModel flipped = lp.model;
  flipped.set_objective_sense(ObjSense::kMaximize);
  for (int j = 0; j < flipped.num_variables(); ++j) {
    flipped.mutable_variable(j)->cost = -flipped.variable(j).cost;
  }
  auto max_res = SimplexSolver::Solve(flipped);
  ASSERT_TRUE(max_res.ok());
  ASSERT_EQ(max_res->status, SolveStatus::kOptimal);
  EXPECT_NEAR(max_res->objective, -min_res->objective, 1e-6);
}

TEST_P(SimplexProperty, TighteningABindingBoundNeverImproves) {
  RandomLp lp = BuildFeasibleLp(GetParam() ^ 0x1234, 5, 3);
  auto base = SimplexSolver::Solve(lp.model);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->status, SolveStatus::kOptimal);
  // Shrink every variable's box toward the construction point by 10%; the
  // construction point stays feasible, so the problem remains feasible and
  // the optimum cannot get better (smaller feasible set).
  LpModel tightened = lp.model;
  for (int j = 0; j < tightened.num_variables(); ++j) {
    VariableDef* v = tightened.mutable_variable(j);
    const double x0 = lp.feasible_point[j];
    v->lower = v->lower + 0.1 * (x0 - v->lower);
    v->upper = v->upper - 0.1 * (v->upper - x0);
  }
  auto tight = SimplexSolver::Solve(tightened);
  ASSERT_TRUE(tight.ok());
  ASSERT_EQ(tight->status, SolveStatus::kOptimal);
  EXPECT_GE(tight->objective, base->objective - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty,
                         ::testing::Values(1, 7, 42, 99, 1234, 777));

}  // namespace
}  // namespace albic::lp
